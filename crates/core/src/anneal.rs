//! A small, deterministic simulated-annealing optimiser for 1-D objectives.
//!
//! Section 4.4 obtains the optimal ε "efficiently … by a simulated
//! annealing \[14\] technique"; this module is that substrate. Geometric
//! cooling, Gaussian-ish proposals scaled by temperature, Metropolis
//! acceptance, explicit seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the annealer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Number of proposal steps.
    pub iterations: usize,
    /// Initial temperature (in objective units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            initial_temperature: 1.0,
            cooling: 0.97,
            seed: 0x007a_c105,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOutcome {
    /// Best argument found.
    pub x: f64,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Minimises `f` over the closed interval `[lo, hi]`.
///
/// The proposal step size starts at a quarter of the interval and shrinks
/// with temperature, so early steps explore and late steps refine. The best
/// point ever seen is returned (not merely the final state).
pub fn minimize_1d(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    config: &AnnealConfig,
) -> AnnealOutcome {
    assert!(lo < hi, "annealing interval must be non-degenerate");
    assert!(config.iterations > 0);
    assert!(config.cooling > 0.0 && config.cooling < 1.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let span = hi - lo;
    let mut current_x = lo + span * rng.gen::<f64>();
    let mut current_v = f(current_x);
    let mut best_x = current_x;
    let mut best_v = current_v;
    let mut evaluations = 1usize;
    let mut temperature = config.initial_temperature;
    for step in 0..config.iterations {
        // Step scale shrinks from span/4 towards span/100.
        let progress = step as f64 / config.iterations as f64;
        let scale = span * (0.25 * (1.0 - progress) + 0.01);
        // Symmetric triangular proposal (cheap Gaussian stand-in).
        let jitter = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * scale;
        let candidate_x = (current_x + jitter).clamp(lo, hi);
        let candidate_v = f(candidate_x);
        evaluations += 1;
        let accept = candidate_v <= current_v || {
            let delta = candidate_v - current_v;
            rng.gen::<f64>() < (-delta / temperature.max(1e-12)).exp()
        };
        if accept {
            current_x = candidate_x;
            current_v = candidate_v;
            if current_v < best_v {
                best_v = current_v;
                best_x = current_x;
            }
        }
        temperature *= config.cooling;
    }
    AnnealOutcome {
        x: best_x,
        value: best_v,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimum_of_parabola() {
        let out = minimize_1d(|x| (x - 3.0).powi(2), 0.0, 10.0, &AnnealConfig::default());
        assert!((out.x - 3.0).abs() < 0.3, "got {}", out.x);
        assert!(out.value < 0.1);
    }

    #[test]
    fn escapes_local_minimum() {
        // Double well: local minimum at x≈1 (value 1), global at x≈7
        // (value 0).
        let f = |x: f64| {
            let a = (x - 1.0).powi(2) + 1.0;
            let b = 2.0 * (x - 7.0).powi(2);
            a.min(b)
        };
        let config = AnnealConfig {
            iterations: 1500,
            initial_temperature: 10.0,
            cooling: 0.995,
            ..AnnealConfig::default()
        };
        let out = minimize_1d(f, 0.0, 10.0, &config);
        assert!(
            (out.x - 7.0).abs() < 0.5,
            "expected global minimum, got {}",
            out.x
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || minimize_1d(|x| x.sin() * x, 0.0, 20.0, &AnnealConfig::default());
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let base = AnnealConfig::default();
        let a = minimize_1d(|x| x.cos(), 0.0, 30.0, &base);
        let b = minimize_1d(|x| x.cos(), 0.0, 30.0, &AnnealConfig { seed: 99, ..base });
        // Both land on *some* minimum of cos (value ≈ −1).
        assert!(a.value < -0.99);
        assert!(b.value < -0.99);
    }

    #[test]
    fn stays_within_bounds() {
        let out = minimize_1d(|x| -x, 2.0, 5.0, &AnnealConfig::default());
        assert!((2.0..=5.0).contains(&out.x));
        assert!(
            (out.x - 5.0).abs() < 0.2,
            "minimum of −x sits at the hi bound"
        );
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_interval_rejected() {
        let _ = minimize_1d(|x| x, 1.0, 1.0, &AnnealConfig::default());
    }

    #[test]
    fn evaluation_budget_respected() {
        let mut calls = 0usize;
        let config = AnnealConfig {
            iterations: 50,
            ..AnnealConfig::default()
        };
        let out = minimize_1d(
            |x| {
                calls += 1;
                x * x
            },
            -1.0,
            1.0,
            &config,
        );
        assert_eq!(out.evaluations, calls);
        assert_eq!(calls, 51, "one initial + one per iteration");
    }
}
