//! The clustering-quality measure `QMeasure` (Section 5.1, Formula 11).
//!
//! `QMeasure = Total SSE + Noise Penalty`, where each cluster contributes
//! `(1 / 2|Cᵢ|) Σ_{x∈Cᵢ} Σ_{y∈Cᵢ} dist(x,y)²` and the noise set `N`
//! contributes the same expression over itself. Smaller is better; the
//! noise penalty punishes parameter choices (too small ε / too large
//! MinLns) that push real cluster members into noise. The paper uses it
//! only as "a hint of the clustering quality" — Figures 17 and 20.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Clustering;
use crate::segment_db::SegmentDatabase;

/// The two addends of Formula 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QMeasure {
    /// `Σᵢ (1/2|Cᵢ|) Σ_{x,y∈Cᵢ} dist(x,y)²`.
    pub total_sse: f64,
    /// `(1/2|N|) Σ_{w,z∈N} dist(w,z)²`.
    pub noise_penalty: f64,
}

impl QMeasure {
    /// The combined measure (smaller = better).
    pub fn value(&self) -> f64 {
        self.total_sse + self.noise_penalty
    }

    /// Exact evaluation: O(Σ|Cᵢ|² + |N|²) distance computations.
    pub fn compute<const D: usize>(db: &SegmentDatabase<D>, clustering: &Clustering) -> Self {
        let mut total_sse = 0.0;
        for cluster in &clustering.clusters {
            total_sse += group_sse(db, &cluster.members, None, 0);
        }
        let noise = clustering.noise();
        let noise_penalty = group_sse(db, &noise, None, 0);
        Self {
            total_sse,
            noise_penalty,
        }
    }

    /// Sampled evaluation: any group with more than `max_pairs` ordered
    /// pairs is estimated from `max_pairs` uniformly sampled pairs and
    /// scaled; unbiased, deterministic for a fixed seed. Use for large
    /// noise sets where the exact O(|N|²) sum is prohibitive.
    pub fn compute_sampled<const D: usize>(
        db: &SegmentDatabase<D>,
        clustering: &Clustering,
        max_pairs: usize,
        seed: u64,
    ) -> Self {
        assert!(max_pairs > 0);
        let mut total_sse = 0.0;
        for cluster in &clustering.clusters {
            total_sse += group_sse(
                db,
                &cluster.members,
                Some(max_pairs),
                seed ^ cluster.id.0 as u64,
            );
        }
        let noise = clustering.noise();
        let noise_penalty = group_sse(db, &noise, Some(max_pairs), seed ^ 0xdead_beef);
        Self {
            total_sse,
            noise_penalty,
        }
    }
}

/// `(1/2|G|) Σ_{x∈G} Σ_{y∈G} dist(x,y)²` for a group `G` of segment ids.
///
/// The double sum runs over ordered pairs including `x = y` (those add 0),
/// exactly as Formula 11 writes it.
fn group_sse<const D: usize>(
    db: &SegmentDatabase<D>,
    members: &[u32],
    max_pairs: Option<usize>,
    seed: u64,
) -> f64 {
    let n = members.len();
    if n == 0 {
        return 0.0;
    }
    let total_pairs = n * n;
    match max_pairs {
        Some(cap) if total_pairs > cap => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            for _ in 0..cap {
                let a = members[rng.gen_range(0..n)];
                let b = members[rng.gen_range(0..n)];
                let d = db.distance(a, b);
                acc += d * d;
            }
            // Mean over sampled ordered pairs, scaled to the full double
            // sum, then the 1/(2|G|) prefactor.
            (acc / cap as f64) * total_pairs as f64 / (2.0 * n as f64)
        }
        _ => {
            let mut acc = 0.0;
            for (i, &a) in members.iter().enumerate() {
                // Unordered pairs counted twice = ordered sum; diagonal is 0.
                for &b in &members[i + 1..] {
                    let d = db.distance(a, b);
                    acc += 2.0 * d * d;
                }
            }
            acc / (2.0 * n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, LineSegmentClustering};
    use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};

    fn db_of(segs: Vec<Segment2>) -> SegmentDatabase<2> {
        let identified = segs
            .into_iter()
            .enumerate()
            .map(|(k, s)| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(k as u32), s))
            .collect();
        SegmentDatabase::from_segments(identified, SegmentDistance::default())
    }

    fn bundle(y0: f64, gap: f64, count: usize) -> Vec<Segment2> {
        (0..count)
            .map(|i| Segment2::xy(0.0, y0 + gap * i as f64, 10.0, y0 + gap * i as f64))
            .collect()
    }

    #[test]
    fn identical_members_give_zero_sse() {
        let db = db_of(vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
        ]);
        assert_eq!(group_sse(&db, &[0, 1, 2], None, 0), 0.0);
    }

    #[test]
    fn hand_computed_two_member_group() {
        // Two parallel segments at distance 2: double sum = 2 · 2² = 8;
        // prefactor 1/(2·2) → SSE = 2.
        let db = db_of(vec![
            Segment2::xy(0.0, 0.0, 10.0, 0.0),
            Segment2::xy(0.0, 2.0, 10.0, 2.0),
        ]);
        let sse = group_sse(&db, &[0, 1], None, 0);
        assert!((sse - 2.0).abs() < 1e-9, "got {sse}");
    }

    #[test]
    fn qmeasure_prefers_correct_parameters() {
        // Two clean bundles; at a sensible ε both cluster and QMeasure is
        // small. At a tiny ε everything is noise and the penalty explodes.
        let mut segs = bundle(0.0, 0.4, 6);
        segs.extend(bundle(50.0, 0.4, 6));
        let db = db_of(segs);
        let good = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(1.5, 3)
            },
        )
        .run();
        assert_eq!(good.clusters.len(), 2);
        let q_good = QMeasure::compute(&db, &good);
        let bad = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(0.01, 3)
            },
        )
        .run();
        assert!(bad.clusters.is_empty(), "tiny ε clusters nothing");
        let q_bad = QMeasure::compute(&db, &bad);
        assert!(
            q_good.value() < q_bad.value(),
            "good {} must beat bad {}",
            q_good.value(),
            q_bad.value()
        );
        assert_eq!(q_bad.total_sse, 0.0, "no clusters, only penalty");
        assert!(q_bad.noise_penalty > 0.0);
    }

    #[test]
    fn sampled_estimator_tracks_exact_value() {
        let mut segs = Vec::new();
        for i in 0..40 {
            segs.push(Segment2::xy(
                (i % 7) as f64,
                0.3 * i as f64,
                10.0 + (i % 7) as f64,
                0.3 * i as f64,
            ));
        }
        let db = db_of(segs);
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(2.0, 3)
            },
        )
        .run();
        let exact = QMeasure::compute(&db, &clustering).value();
        let sampled = QMeasure::compute_sampled(&db, &clustering, 600, 42).value();
        let rel = (sampled - exact).abs() / exact.max(1e-9);
        assert!(rel < 0.35, "sampled {sampled} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn sampled_equals_exact_when_under_cap() {
        let db = db_of(bundle(0.0, 1.0, 5));
        let clustering = LineSegmentClustering::new(
            &db,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(2.5, 3)
            },
        )
        .run();
        let exact = QMeasure::compute(&db, &clustering);
        let sampled = QMeasure::compute_sampled(&db, &clustering, 10_000, 1);
        assert_eq!(exact, sampled, "cap larger than pair count ⇒ exact path");
    }

    #[test]
    fn empty_clustering_scores_zero() {
        let db = db_of(vec![]);
        let clustering = LineSegmentClustering::new(&db, ClusterConfig::new(1.0, 2)).run();
        let q = QMeasure::compute(&db, &clustering);
        assert_eq!(q.value(), 0.0);
    }
}
