//! Streaming/incremental clustering: ingest trajectories one at a time.
//!
//! The paper's framework (Figure 4) is batch-oriented: partition every
//! trajectory, then group all segments at once. Serving-style workloads
//! instead see trajectories arrive one by one — a new storm track, a new
//! vehicle trace — and want the clustering kept current without re-running
//! the grouping phase from scratch on every arrival. This module provides
//! [`IncrementalClustering`], an online engine that
//!
//! 1. runs MDL partitioning (Section 3) on each arriving trajectory
//!    immediately ([`crate::partition::partition_trajectory_from`]),
//! 2. appends the resulting segments to the shared [`SegmentDatabase`] and
//!    inserts them into the live spatial index (the R-tree's Guttman
//!    insertion path, or grid-cell hashing — [`NeighborIndex::insert`]),
//! 3. repairs cluster state **locally**: the ε-neighborhoods (Definition 4)
//!    of the new segments are expanded, neighborhood cardinalities of
//!    affected segments are updated in place, segments whose core-ness
//!    (Definition 5) flips are re-expanded, and a union-find over core
//!    segments (the same min-root machinery as the sharded parallel path in
//!    [`crate::shard`]) folds newly connected components together.
//!
//! # Exactness
//!
//! Local repair is not an approximation. Core-ness is intrinsic (it depends
//! only on the database, never on arrival order), clusters restricted to
//! cores are the connected components of the core-adjacency graph, and
//! non-core border segments join the earliest claiming component — all
//! order-free quantities, the same argument that makes the sharded parallel
//! path exact. Insertion only ever *adds* ε-edges and *promotes* segments
//! to core (for non-negative weights), so maintaining counts, a monotone
//! union-find, and per-border claim lists reproduces the batch state after
//! every insertion: [`IncrementalClustering::snapshot`] equals
//! [`crate::LineSegmentClustering::run`] on the same prefix of the stream,
//! label for label. The equivalence suite
//! (`crates/core/tests/streaming_equivalence.rs`) locks this down on
//! hurricane, grid, and random-walk fixtures, including mid-stream
//! prefixes.
//!
//! # The dirty-region threshold
//!
//! One insertion's repair cost is proportional to its *dirty region*: the
//! new segments plus every existing segment whose core-ness flipped (each
//! needs one ε-expansion). A trajectory crossing a near-threshold region
//! can flip a large fraction of the database at once; past that point,
//! local repair costs as much as re-clustering while leaving the
//! incrementally grown R-tree less balanced than a fresh STR bulk load.
//! [`StreamConfig::rebuild_threshold`] caps the dirty fraction: when one
//! insertion dirties more than that fraction of the database, the engine
//! falls back to a full re-cluster (recomputing counts, cores, components,
//! and claims from scratch) and rebuilds the spatial index. The fallback
//! changes *when* work happens, never the result.
//!
//! Demotions cannot happen under non-negative weights; if a negative
//! segment weight does drop a core segment below `MinLns` (the weighted
//! Section 4.2 extension puts no sign constraint on weights), the engine
//! detects the demotion and forces the full re-cluster, because a monotone
//! union-find cannot un-merge.
//!
//! # Decremental operation and the sliding window
//!
//! Serving deployments also need trajectories to *leave*: an explicit
//! retraction ([`IncrementalClustering::remove_trajectory`]) or a sliding
//! window that ages old data out ([`StreamConfig::time_window`],
//! [`StreamConfig::capacity`]). Removal is repaired by the mirror-image
//! scheme: departed segments are tombstoned in the database (the id space
//! stays dense, so every per-id array keeps its meaning) and deleted from
//! the live index, the cardinalities of their surviving ε-neighbors are
//! *recomputed* with fresh whole-window sums (never decremented — repeated
//! subtraction would drift off the batch bit pattern), and the only
//! components rebuilt are those that contained a departed or demoted core
//! — removal never adds ε-edges, so every other component transplants
//! unchanged into a fresh union-find under its old minimum root, while the
//! affected components' surviving cores are re-expanded, which reproduces
//! any split. The same [`StreamConfig::rebuild_threshold`] bounds the
//! repair: an oversized dirty region (or a weighted-stream core
//! *promotion*, which repair cannot see) falls back to the full
//! re-cluster. Either way the headline guarantee is unchanged: after every
//! operation, [`IncrementalClustering::snapshot`] equals the batch run
//! over the live window (`crates/core/tests/decremental_equivalence.rs`
//! drives random insert/remove/expiry interleavings against it).
//!
//! # Parallel repair
//!
//! Every repair and rebuild path above is dominated by ε-queries, and an
//! ε-query is a pure read of the database and index. When
//! [`crate::TraclusConfig::parallelism`] allows more than one thread, the
//! engine fans each large enough batch of queries out over scoped worker
//! threads (the same machinery as [`crate::shard`]) and applies the
//! results sequentially in ascending-id order — so the weighted
//! cardinality sums, union-find merges, and claim lists are bit-identical
//! to the sequential engine's, and the snapshot guarantee is untouched by
//! the thread count. [`StreamStats::repair_parallel_batches`] counts how
//! often the parallel path actually engaged.

use traclus_geom::Trajectory;

use crate::cluster::{finalize_raw, ClusterConfig, Clustering};
use crate::partition::partition_trajectory_from;
use crate::segment_db::{NeighborIndex, PruneStats, SegmentDatabase};
use crate::shard::UnionFind;
use crate::{TraclusConfig, TraclusOutcome};

/// Maintenance knobs of the incremental engine — the run-time parameters
/// of *streaming* operation, next to the paper's statistical ones in
/// [`TraclusConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Dirty-region fraction above which one insertion or removal triggers
    /// a full re-cluster (and index rebuild) instead of local repair.
    ///
    /// `0.0` re-clusters on every operation (the naive baseline), values
    /// `≥ 1.0` essentially never re-cluster; the default `0.25` re-clusters
    /// only when a single operation dirties a quarter of the live database.
    /// The choice never affects the resulting clustering, only where the
    /// work is spent. (For removals the dirty region counts the departed
    /// segments, their surviving ε-neighbors, and the re-expanded cores of
    /// split-suspect components — in pathological windows that sum can
    /// exceed the live count, so a threshold above `1.0` is the way to pin
    /// the engine to pure local repair in tests.)
    pub rebuild_threshold: f64,
    /// Sliding time window in logical-clock units: after each insertion,
    /// trajectories whose age (current clock minus their ingest timestamp)
    /// has reached the window are expired. [`IncrementalClustering::insert`]
    /// ticks the clock by one per call, so a window of `w` keeps the `w`
    /// most recent insertions; [`IncrementalClustering::insert_at`] lets
    /// the caller supply real (monotone) event times instead. `None`
    /// disables time-based expiry.
    ///
    /// Boundary semantics are pinned: a trajectory whose age *equals* the
    /// window (`clock − timestamp == w`) is expired, so the live window
    /// holds exactly the timestamps in the half-open interval
    /// `(clock − w, clock]`, and every trajectory ingested at one
    /// timestamp ages out atomically in the same expiry batch. (The
    /// explicit [`IncrementalClustering::expire_older_than`] is the other
    /// way around: its cutoff is exclusive — a trajectory stamped exactly
    /// `cutoff` survives. `expire_older_than(clock − w + 1)` reproduces
    /// the window policy.)
    pub time_window: Option<u64>,
    /// Maximum live trajectories: after each insertion the oldest live
    /// trajectories are expired until at most this many remain. `None`
    /// disables capacity-based expiry. Both policies may be active; the
    /// time window is applied first.
    pub capacity: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            rebuild_threshold: 0.25,
            time_window: None,
            capacity: None,
        }
    }
}

/// What one [`IncrementalClustering::insert`] did, for observability and
/// back-pressure decisions in serving loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertReport {
    /// Segments the MDL partitioner produced for this trajectory.
    pub new_segments: usize,
    /// Existing segments whose core-ness flipped and were re-expanded.
    pub flipped_cores: usize,
    /// Whether the dirty-region threshold forced a full re-cluster.
    pub rebuilt: bool,
    /// Trajectories the sliding-window policy expired after this insertion
    /// ([`StreamConfig::time_window`] / [`StreamConfig::capacity`]).
    pub expired_trajectories: usize,
}

/// What one [`IncrementalClustering::remove_trajectory`] (or window
/// expiry) did, the decremental sibling of [`InsertReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoveReport {
    /// Live trajectories the operation retired.
    pub removed_trajectories: usize,
    /// Segments tombstoned in the database and deleted from the index.
    pub removed_segments: usize,
    /// Surviving segments whose core-ness the removal demoted.
    pub demoted_cores: usize,
    /// Whether the dirty region (or a weighted-stream core *promotion*)
    /// forced the full re-cluster fallback instead of local repair.
    pub rebuilt: bool,
}

/// Cumulative counters over the lifetime of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Trajectories ingested (including ones that partitioned to nothing).
    pub trajectories: usize,
    /// Segments appended to the database.
    pub segments: usize,
    /// Existing segments promoted to core by a later insertion.
    pub core_flips: usize,
    /// Insertions resolved by local repair.
    pub local_repairs: usize,
    /// Insertions resolved by the full re-cluster fallback.
    pub full_rebuilds: usize,
    /// Trajectories removed (explicit removals plus window expiry).
    pub removals: usize,
    /// The subset of `removals` retired by the sliding-window policy.
    pub expired: usize,
    /// Segments tombstoned by removals.
    pub removed_segments: usize,
    /// Surviving segments demoted from core by a removal.
    pub core_demotions: usize,
    /// Removal operations resolved by scoped local repair — the
    /// repair-vs-rebuild counter the decremental test harness pins.
    pub decremental_repairs: usize,
    /// Removal operations resolved by the full re-cluster fallback.
    pub decremental_rebuilds: usize,
    /// Repair batches whose ε-queries ran on the parallel workers (batches
    /// below the parallelism floor run sequentially and are not counted).
    pub repair_parallel_batches: usize,
    /// ε-queries executed inside those parallel batches.
    pub repair_parallel_queries: u64,
    /// ε-neighborhood candidates examined by the filter-and-refine path
    /// (pruned + refined; 0 while pruning is disabled).
    pub prune_candidates: u64,
    /// Candidates discarded by the MBR min-distance lower bound (tier 1).
    pub pruned_mbr: u64,
    /// Candidates discarded by the midpoint/length lower bound (tier 2).
    pub pruned_midpoint: u64,
    /// Candidates discarded by the exact-angle lower bound (tier 3).
    pub pruned_angle: u64,
    /// Candidates that survived every lower bound and were scored exactly.
    pub prune_refined: u64,
}

impl StreamStats {
    /// Folds one index's filter-and-refine tallies into the lifetime
    /// counters — called when an index is retired (full rebuild) and when
    /// reporting stats from the live index.
    pub(crate) fn absorb_prune(&mut self, p: PruneStats) {
        self.prune_candidates += p.candidates;
        self.pruned_mbr += p.pruned_mbr;
        self.pruned_midpoint += p.pruned_midpoint;
        self.pruned_angle += p.pruned_angle;
        self.prune_refined += p.refined;
    }
}

/// The online TRACLUS engine: accepts one trajectory at a time and keeps
/// the line-segment clustering current.
///
/// Construct it from a [`TraclusConfig`] (directly or via
/// [`crate::Traclus::stream`]), feed trajectories with [`Self::insert`],
/// read the clustering at any point with [`Self::snapshot`], and finish
/// with [`Self::finish`] for the full pipeline outcome including
/// representative trajectories (Section 4.3).
///
/// ```
/// use traclus_core::{IncrementalClustering, Traclus, TraclusConfig};
/// use traclus_geom::{Point2, Trajectory, TrajectoryId};
///
/// // Eight trajectories sharing one horizontal corridor.
/// let trajectories: Vec<Trajectory<2>> = (0..8)
///     .map(|i| {
///         Trajectory::new(
///             TrajectoryId(i),
///             (0..25)
///                 .map(|k| Point2::xy(k as f64 * 4.0, i as f64 * 0.3))
///                 .collect(),
///         )
///     })
///     .collect();
/// let config = TraclusConfig {
///     eps: 5.0,
///     min_lns: 3,
///     ..TraclusConfig::default()
/// };
///
/// // Stream them in one at a time…
/// let mut engine = IncrementalClustering::<2>::new(config);
/// for tr in &trajectories {
///     engine.insert(tr);
/// }
///
/// // …and the result is the batch clustering, label for label.
/// let batch = Traclus::new(config).run(&trajectories);
/// assert_eq!(engine.snapshot(), batch.clustering);
/// ```
#[derive(Clone)]
pub struct IncrementalClustering<const D: usize> {
    config: TraclusConfig,
    cluster: ClusterConfig,
    stream: StreamConfig,
    db: SegmentDatabase<D>,
    index: NeighborIndex<D>,
    /// `|Nε(L)|` per segment (weighted when configured; self included),
    /// maintained incrementally in ascending-id accumulation order — the
    /// same order the batch pass sums in, so the values are bit-identical.
    counts: Vec<f64>,
    /// Definition 5 core flags, monotone under insertion (for non-negative
    /// weights).
    core: Vec<bool>,
    /// Union-find over core segments; min-root, so a component's root is
    /// its minimum core id.
    dsu: UnionFind,
    /// For each non-core segment: core ids within ε that claim it as a
    /// border member (cleared if the segment later becomes core itself).
    /// Lists may carry stale entries for cores a removal has since retired
    /// or demoted; [`Self::snapshot`] filters on the current core flags.
    claims: Vec<Vec<u32>>,
    stats: StreamStats,
    /// Logical clock: ticks by one per [`Self::insert`], or jumps to the
    /// caller-supplied (monotone) timestamp in [`Self::insert_at`]. Drives
    /// [`StreamConfig::time_window`] expiry — no wall clock is ever read.
    clock: u64,
    /// Arrival log: one record per segment-producing insertion, in ingest
    /// order. Removal and expiry mark records dead; the id range each
    /// record spans is what a removal tombstones.
    arrivals: Vec<Arrival>,
    /// Count of live records in `arrivals`.
    live_arrivals: usize,
    /// Reusable neighborhood scratch.
    scratch: Vec<u32>,
}

/// One segment-producing insertion in the arrival log.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    trajectory: traclus_geom::TrajectoryId,
    /// First segment id the insertion appended.
    first: u32,
    /// Number of segments appended.
    count: u32,
    /// Logical-clock timestamp at ingest.
    timestamp: u64,
    live: bool,
}

/// Claim lists are deduplicated once they outgrow this many entries
/// (weighted databases can have non-core segments with arbitrarily many
/// core neighbours; unweighted ones are bounded by `MinLns` anyway).
const CLAIM_DEDUP_LEN: usize = 16;

/// Below this many ε-queries a repair batch runs sequentially: spawning
/// scoped workers costs more than the queries themselves.
const MIN_PARALLEL_REPAIR: usize = 32;

/// Repair loops hand ids to the workers in batches of this size, so a
/// rebuild over a large window never retains more than one batch worth of
/// neighborhoods at a time (the sequential loops hold exactly one).
const REPAIR_BATCH: usize = 512;

impl<const D: usize> IncrementalClustering<D> {
    /// An empty engine bound to a pipeline configuration (the `stream`
    /// field supplies the maintenance knobs).
    pub fn new(config: TraclusConfig) -> Self {
        assert!(config.eps > 0.0 && config.eps.is_finite(), "ε must be > 0");
        assert!(config.min_lns >= 1, "MinLns must be ≥ 1");
        let cluster = config.cluster_config();
        let db = SegmentDatabase::from_segments(Vec::new(), config.distance);
        let mut index = db.build_index(cluster.index, cluster.eps);
        index.set_pruning(cluster.pruning);
        Self {
            config,
            cluster,
            stream: config.stream,
            db,
            index,
            counts: Vec::new(),
            core: Vec::new(),
            dsu: UnionFind::new(0),
            claims: Vec::new(),
            stats: StreamStats::default(),
            clock: 0,
            arrivals: Vec::new(),
            live_arrivals: 0,
            scratch: Vec::new(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &TraclusConfig {
        &self.config
    }

    /// The growing segment database (phase 1 output so far), in sparse id
    /// space: tombstoned segments keep their slots. Use
    /// [`Self::live_database`] for the dense live-window view the batch
    /// pipeline would build.
    pub fn database(&self) -> &SegmentDatabase<D> {
        &self.db
    }

    /// The live window as a dense database — exactly what the batch
    /// pipeline would build over the surviving trajectories in arrival
    /// order. Borrowed (free) while nothing has ever been removed, a
    /// compacting copy otherwise.
    pub fn live_database(&self) -> std::borrow::Cow<'_, SegmentDatabase<D>> {
        if self.db.live_len() == self.db.len() {
            std::borrow::Cow::Borrowed(&self.db)
        } else {
            std::borrow::Cow::Owned(self.db.compact_live())
        }
    }

    /// Number of segment id slots allocated so far (live plus tombstoned).
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Number of live (not removed or expired) segments.
    pub fn live_len(&self) -> usize {
        self.db.live_len()
    }

    /// Number of live trajectories in the window (segment-producing
    /// insertions not yet removed or expired).
    pub fn live_trajectories(&self) -> usize {
        self.live_arrivals
    }

    /// The engine's logical clock: the timestamp of the latest insertion.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// True before the first segment-producing insertion.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Lifetime counters (trajectories, segments, flips, rebuilds,
    /// removals, filter-and-refine prune tallies). Prune counters combine
    /// the totals folded in by retired indexes (full rebuilds) with the
    /// live index's running tallies.
    pub fn stats(&self) -> StreamStats {
        let mut stats = self.stats;
        stats.absorb_prune(self.index.prune_stats());
        stats
    }

    /// Ingests one trajectory at the next logical-clock tick: partitions
    /// it (Figure 8), appends and indexes its segments, repairs cluster
    /// state — locally when the dirty region stays under
    /// [`StreamConfig::rebuild_threshold`], by a full re-cluster otherwise
    /// — and then applies the sliding-window expiry policy. Returns what
    /// happened.
    pub fn insert(&mut self, trajectory: &Trajectory<D>) -> InsertReport {
        let at = self.clock.saturating_add(1);
        self.insert_at(trajectory, at)
    }

    /// [`Self::insert`] at a caller-supplied event time, for streams with
    /// real timestamps. Times must be non-decreasing across calls (the
    /// sliding window is append-ordered); an earlier timestamp panics.
    ///
    /// ```
    /// use traclus_core::{IncrementalClustering, StreamConfig, TraclusConfig};
    /// use traclus_geom::{Point2, Trajectory, TrajectoryId};
    ///
    /// // Keep one hour of history (timestamps in seconds).
    /// let config = TraclusConfig {
    ///     eps: 5.0,
    ///     min_lns: 3,
    ///     stream: StreamConfig { time_window: Some(3600), ..StreamConfig::default() },
    ///     ..TraclusConfig::default()
    /// };
    /// let mut engine = IncrementalClustering::<2>::new(config);
    /// let track = |i: u32| Trajectory::new(
    ///     TrajectoryId(i),
    ///     (0..20).map(|k| Point2::xy(k as f64 * 5.0, i as f64 * 0.3)).collect(),
    /// );
    /// engine.insert_at(&track(0), 100);
    /// engine.insert_at(&track(1), 2_000);
    /// // Two hours later: both earlier tracks age out of the window.
    /// let report = engine.insert_at(&track(2), 7_300);
    /// assert_eq!(report.expired_trajectories, 2);
    /// assert_eq!(engine.live_trajectories(), 1);
    /// ```
    pub fn insert_at(&mut self, trajectory: &Trajectory<D>, timestamp: u64) -> InsertReport {
        assert!(
            timestamp >= self.clock,
            "stream timestamps must be non-decreasing"
        );
        self.clock = timestamp;
        self.stats.trajectories += 1;
        let first = self.db.len() as u32;
        let segments = partition_trajectory_from(&self.config.partition, trajectory, first);
        let new_count = segments.len();
        self.stats.segments += new_count;
        if new_count == 0 {
            // Nothing entered the window, but time still advanced.
            let expired = self.enforce_window();
            return InsertReport {
                expired_trajectories: expired,
                ..InsertReport::default()
            };
        }
        self.arrivals.push(Arrival {
            trajectory: trajectory.id,
            first,
            count: new_count as u32,
            timestamp,
            live: true,
        });
        self.live_arrivals += 1;
        self.db.append_segments(segments);
        let n = self.db.len() as u32;
        for id in first..n {
            self.index.insert(id, self.db.bbox_of(id));
            self.counts.push(0.0);
            self.core.push(false);
            self.claims.push(Vec::new());
            self.dsu.push();
        }

        // ε-neighborhoods of every new segment, against the whole database
        // (new segments included — they are already indexed). Large
        // arrivals fan the queries out over the worker threads; the repair
        // below retains every neighborhood anyway, so there is no batching
        // to do.
        let new_ids: Vec<u32> = (first..n).collect();
        let hoods: Vec<Vec<u32>> = self.batch_neighborhoods(&new_ids);

        // Update cardinalities: each new segment gets its full neighborhood
        // sum; each pre-existing neighbour gains the new segment's
        // contribution. Both accumulate in ascending-id order, matching the
        // batch pass bit for bit.
        let mut touched: Vec<u32> = Vec::new();
        for (k, hood) in hoods.iter().enumerate() {
            let id = first + k as u32;
            self.counts[id as usize] = self
                .db
                .neighborhood_cardinality(hood, self.cluster.weighted);
            let gain = if self.cluster.weighted {
                self.db.segment(id).weight
            } else {
                1.0
            };
            for &b in hood {
                if b < first {
                    self.counts[b as usize] += gain;
                    touched.push(b);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        // Segments whose core-ness flipped. Promotions are repaired
        // locally; a demotion (possible only with negative weights) cannot
        // be — the union-find is monotone — so it forces the rebuild path.
        let mut flips: Vec<u32> = Vec::new();
        let mut demoted = false;
        for &b in &touched {
            let is_core_now = self.counts[b as usize] >= self.cluster.min_lns;
            match (self.core[b as usize], is_core_now) {
                (false, true) => flips.push(b),
                (true, false) => demoted = true,
                _ => {}
            }
        }
        let flipped_cores = flips.len();

        let dirty = new_count + flipped_cores;
        let rebuilt =
            demoted || (dirty as f64) > self.stream.rebuild_threshold * self.db.live_len() as f64;
        if rebuilt {
            self.rebuild();
            self.stats.full_rebuilds += 1;
        } else {
            self.repair_locally(first, &hoods, &flips);
            self.stats.local_repairs += 1;
        }
        self.stats.core_flips += flipped_cores;
        #[cfg(feature = "invariant-checks")]
        self.debug_check_insert(first, &flips);
        let expired = self.enforce_window();
        InsertReport {
            new_segments: new_count,
            flipped_cores,
            rebuilt,
            expired_trajectories: expired,
        }
    }

    /// Post-insertion sanitizer pass (`invariant-checks` feature only):
    /// union-find canonical form, SoA/AoS coherence, incrementally grown
    /// index vs full scan on the dirty region, and — at power-of-two
    /// trajectory counts, so the extra work stays O(log n) batch runs over
    /// a stream — the full snapshot == batch spot check.
    #[cfg(feature = "invariant-checks")]
    fn debug_check_insert(&self, first: u32, flips: &[u32]) {
        crate::invariants::assert_union_find_canonical(&self.dsu, "stream-insert");
        crate::invariants::assert_soa_coherent(&self.db, "stream-insert");
        let mut dirty: Vec<u32> = (first..self.db.len() as u32).collect();
        dirty.extend_from_slice(flips);
        crate::invariants::assert_index_consistent(
            &self.db,
            &self.index,
            self.cluster.eps,
            &dirty,
            "stream-insert",
        );
        if self.stats.trajectories.is_power_of_two() {
            let live = self.live_database();
            let batch = crate::cluster::LineSegmentClustering::new(&live, self.cluster).run();
            assert!(
                self.snapshot() == batch,
                "invariant-checks[stream-insert]: snapshot diverged from the \
                 batch run at {} trajectories / {} live segments",
                self.stats.trajectories,
                self.db.live_len()
            );
        }
    }

    /// Post-removal sanitizer pass (`invariant-checks` feature only): the
    /// decremental siblings of [`Self::debug_check_insert`] — union-find
    /// canonical form over the repaired components, tombstone bookkeeping,
    /// incrementally shrunk index vs full scan on the dirty region, and
    /// the headline decremental guarantee itself: after **every** removal,
    /// `snapshot()` equals a batch run over the live window.
    #[cfg(feature = "invariant-checks")]
    fn debug_check_remove(&self, dirty: &[u32]) {
        crate::invariants::assert_union_find_canonical(&self.dsu, "stream-remove");
        crate::invariants::assert_soa_coherent(&self.db, "stream-remove");
        crate::invariants::assert_tombstones_coherent(&self.db, "stream-remove");
        let live_dirty: Vec<u32> = dirty
            .iter()
            .copied()
            .filter(|&d| self.db.is_live(d))
            .collect();
        crate::invariants::assert_index_consistent(
            &self.db,
            &self.index,
            self.cluster.eps,
            &live_dirty,
            "stream-remove",
        );
        let live = self.live_database();
        let batch = crate::cluster::LineSegmentClustering::new(&live, self.cluster).run();
        assert!(
            self.snapshot() == batch,
            "invariant-checks[stream-remove]: snapshot diverged from the \
             batch run over the live window ({} live segments, {} slots)",
            self.db.live_len(),
            self.db.len()
        );
    }

    /// Ingests a whole sequence, returning the number of trajectories.
    pub fn extend<'a>(
        &mut self,
        trajectories: impl IntoIterator<Item = &'a Trajectory<D>>,
    ) -> usize {
        let mut count = 0;
        for tr in trajectories {
            self.insert(tr);
            count += 1;
        }
        count
    }

    /// Retires every live arrival of trajectory `id` from the window and
    /// repairs the clustering in place: the departed segments leave the
    /// database and the spatial index, neighborhood cardinalities across
    /// the dirty ε-region are recomputed, demoted cores turn back into
    /// border candidates, and any component the trajectory held together is
    /// rebuilt from its survivors — splitting it when the removed segments
    /// were the bridge. Exactness is preserved: the post-removal
    /// [`Self::snapshot`] equals a batch run over the surviving window,
    /// label for label.
    ///
    /// Removing an id with no live arrivals is a no-op (default report).
    /// The same trajectory id may be re-inserted later; it gets fresh
    /// segment ids.
    ///
    /// ```
    /// use traclus_core::{IncrementalClustering, Traclus, TraclusConfig};
    /// use traclus_geom::{Point2, Trajectory, TrajectoryId};
    ///
    /// let track = |i: u32| Trajectory::new(
    ///     TrajectoryId(i),
    ///     (0..20).map(|k| Point2::xy(k as f64 * 5.0, i as f64 * 0.4)).collect(),
    /// );
    /// let config = TraclusConfig { eps: 3.0, min_lns: 3, ..TraclusConfig::default() };
    /// let mut engine = IncrementalClustering::<2>::new(config);
    /// for i in 0..6 {
    ///     engine.insert(&track(i));
    /// }
    ///
    /// let report = engine.remove_trajectory(TrajectoryId(2));
    /// assert_eq!(report.removed_trajectories, 1);
    /// assert_eq!(engine.live_trajectories(), 5);
    ///
    /// // Exactness: the snapshot equals the batch run without track 2.
    /// let survivors: Vec<_> = (0..6).filter(|&i| i != 2).map(track).collect();
    /// let batch = Traclus::new(config).run(&survivors);
    /// assert_eq!(engine.snapshot(), batch.clustering);
    /// ```
    pub fn remove_trajectory(&mut self, id: traclus_geom::TrajectoryId) -> RemoveReport {
        let kill: Vec<usize> = self
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live && a.trajectory == id)
            .map(|(k, _)| k)
            .collect();
        self.remove_arrivals(kill)
    }

    /// Expires every live trajectory whose ingest timestamp is strictly
    /// before `cutoff` — the explicit form of [`StreamConfig::time_window`]
    /// expiry, for callers driving the window themselves. The cutoff is
    /// exclusive: a trajectory stamped exactly `cutoff` survives (whereas
    /// the window policy expires a trajectory whose age exactly equals the
    /// window — see [`StreamConfig::time_window`]).
    pub fn expire_older_than(&mut self, cutoff: u64) -> RemoveReport {
        let kill: Vec<usize> = self
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live && a.timestamp < cutoff)
            .map(|(k, _)| k)
            .collect();
        let report = self.remove_arrivals(kill);
        self.stats.expired += report.removed_trajectories;
        report
    }

    /// Expires the oldest live trajectories until at most `keep` remain —
    /// the explicit form of [`StreamConfig::capacity`] expiry.
    pub fn expire_to_capacity(&mut self, keep: usize) -> RemoveReport {
        let excess = self.live_arrivals.saturating_sub(keep);
        let kill: Vec<usize> = self
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live)
            .map(|(k, _)| k)
            .take(excess)
            .collect();
        let report = self.remove_arrivals(kill);
        self.stats.expired += report.removed_trajectories;
        report
    }

    /// Applies the configured sliding-window policy after an insertion:
    /// ages out trajectories past [`StreamConfig::time_window`], then
    /// retires oldest-first down to [`StreamConfig::capacity`]. One batched
    /// removal covers both. Returns the number of expired trajectories.
    fn enforce_window(&mut self) -> usize {
        if self.stream.time_window.is_none() && self.stream.capacity.is_none() {
            return 0;
        }
        let mut kill: Vec<usize> = Vec::new();
        let mut survivors = self.live_arrivals;
        for (k, a) in self.arrivals.iter().enumerate() {
            if !a.live {
                continue;
            }
            let aged_out = self
                .stream
                .time_window
                .is_some_and(|w| self.clock.saturating_sub(a.timestamp) >= w);
            let over_capacity = self.stream.capacity.is_some_and(|cap| survivors > cap);
            if !(aged_out || over_capacity) {
                // Timestamps are non-decreasing, so the expirable live
                // arrivals form a prefix; nothing later can age out either.
                break;
            }
            kill.push(k);
            survivors -= 1;
        }
        let report = self.remove_arrivals(kill);
        self.stats.expired += report.removed_trajectories;
        report.removed_trajectories
    }

    /// Marks the selected live arrivals dead and repairs the clustering in
    /// one batched removal. `kill` holds indexes into `arrivals`, ascending.
    fn remove_arrivals(&mut self, kill: Vec<usize>) -> RemoveReport {
        if kill.is_empty() {
            return RemoveReport::default();
        }
        let mut removed: Vec<u32> = Vec::new();
        for &k in &kill {
            let a = &mut self.arrivals[k];
            debug_assert!(a.live, "killing an already-dead arrival");
            a.live = false;
            removed.extend(a.first..a.first + a.count);
        }
        self.live_arrivals -= kill.len();
        // Arrivals hold disjoint ascending id ranges, so `removed` is
        // already sorted and duplicate-free.
        debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
        self.apply_removal(kill.len(), removed)
    }

    /// The decremental workhorse: tombstones and unindexes the departing
    /// segments, recomputes the dirty ε-region's cardinalities with fresh
    /// whole-window sums (never incremental subtraction, which would drift
    /// off the batch bit pattern), and repairs the component structure —
    /// scoped local repair when the dirty region stays under
    /// [`StreamConfig::rebuild_threshold`], the full re-cluster fallback
    /// otherwise.
    fn apply_removal(&mut self, removed_trajectories: usize, removed: Vec<u32>) -> RemoveReport {
        self.stats.removals += removed_trajectories;
        self.stats.removed_segments += removed.len();

        // 1. Tombstone + unindex every departing segment first, so the
        //    ε-queries below see exactly the post-removal window.
        for &r in &removed {
            let was_live = self.db.remove_segment(r);
            debug_assert!(was_live, "removing a dead segment");
            let bbox = *self.db.bbox_of(r);
            self.index.remove(r, &bbox);
        }

        // 2. Dirty region: the surviving ε-neighbors of the departed
        //    segments (a dead center keeps its geometry; candidates are
        //    live-only). While visiting, scrub departed core ids from their
        //    neighbours' claim lists — the snapshot would filter them
        //    anyway, retention just bounds memory.
        let mut dirty: Vec<u32> = Vec::new();
        for batch in removed.chunks(REPAIR_BATCH) {
            let hoods = self.batch_neighborhoods(batch);
            for (&r, hood) in batch.iter().zip(&hoods) {
                for &m in hood {
                    dirty.push(m);
                    if self.core[r as usize] && !self.core[m as usize] {
                        self.claims[m as usize].retain(|&c| c != r);
                    }
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        // 3. Recompute the dirty cardinalities in ascending id order — the
        //    accumulation order the batch pass uses, so the sums stay
        //    bit-identical. Collect core demotions; a promotion (possible
        //    only with negative weights) defeats the scoped repair.
        let mut demoted: Vec<u32> = Vec::new();
        let mut promoted = false;
        for batch in dirty.chunks(REPAIR_BATCH) {
            let hoods = self.batch_neighborhoods(batch);
            for (&d, hood) in batch.iter().zip(&hoods) {
                self.counts[d as usize] = self
                    .db
                    .neighborhood_cardinality(hood, self.cluster.weighted);
                let is_core_now = self.counts[d as usize] >= self.cluster.min_lns;
                match (self.core[d as usize], is_core_now) {
                    (true, false) => demoted.push(d),
                    (false, true) => promoted = true,
                    _ => {}
                }
            }
        }

        // 4. Affected components: any old component holding a departed or
        //    demoted core may have split and must be rebuilt from its
        //    survivors. Every other component is untouched — removal never
        //    adds ε-edges, so no cross-component merge can be pending.
        //    Roots are read before any core flag changes.
        let mut affected_roots: Vec<u32> = Vec::new();
        for &r in &removed {
            if self.core[r as usize] {
                affected_roots.push(self.dsu.find_readonly(r));
            }
        }
        for &d in &demoted {
            affected_roots.push(self.dsu.find_readonly(d));
        }
        affected_roots.sort_unstable();
        affected_roots.dedup();

        // 5. Partition the surviving cores: members of affected components
        //    get re-expanded; the rest transplant wholesale, grouped by
        //    their old root.
        let mut affected_cores: Vec<u32> = Vec::new();
        let mut keep: Vec<(u32, u32)> = Vec::new();
        for id in 0..self.db.len() as u32 {
            if !self.core[id as usize] || !self.db.is_live(id) || demoted.binary_search(&id).is_ok()
            {
                continue;
            }
            let root = self.dsu.find_readonly(id);
            if affected_roots.binary_search(&root).is_ok() {
                affected_cores.push(id);
            } else {
                keep.push((root, id));
            }
        }

        // 6. Repair or rebuild. The departed segments' clustering state is
        //    retired either way.
        let work = removed.len() + dirty.len() + affected_cores.len();
        let rebuilt = promoted
            || (work as f64) > self.stream.rebuild_threshold * self.db.live_len().max(1) as f64;
        for &r in &removed {
            self.core[r as usize] = false;
            self.counts[r as usize] = 0.0;
            self.claims[r as usize] = Vec::new();
        }
        if rebuilt {
            self.rebuild();
            self.stats.decremental_rebuilds += 1;
        } else {
            self.repair_removal(&demoted, &keep, &affected_cores);
            self.stats.decremental_repairs += 1;
        }
        self.stats.core_demotions += demoted.len();
        let report = RemoveReport {
            removed_trajectories,
            removed_segments: removed.len(),
            demoted_cores: demoted.len(),
            rebuilt,
        };
        #[cfg(feature = "invariant-checks")]
        {
            let mut check = dirty;
            check.extend_from_slice(&removed);
            self.debug_check_remove(&check);
        }
        report
    }

    /// Scoped decremental repair: a fresh union-find where unaffected
    /// components transplant wholesale under their old minimum root,
    /// demoted cores turn into border candidates with freshly computed
    /// claim lists, and the surviving cores of affected components are
    /// re-expanded from scratch — the same min-root rules as
    /// [`crate::shard`], confined to the components the removal could have
    /// split.
    fn repair_removal(&mut self, demoted: &[u32], keep: &[(u32, u32)], affected_cores: &[u32]) {
        // All demotions land before any claim list is derived, so the core
        // flags each derivation reads are final.
        for &d in demoted {
            self.core[d as usize] = false;
        }
        for batch in demoted.chunks(REPAIR_BATCH) {
            let hoods = self.batch_neighborhoods(batch);
            for (&d, hood) in batch.iter().zip(&hoods) {
                // A demoted core becomes a border candidate: its claims are
                // exactly its surviving core neighbours (its old list is
                // empty — it was core). Conversely its non-core neighbours
                // may hold claims on it; scrub those.
                let mut claims = Vec::new();
                for &m in hood {
                    if m == d {
                        continue;
                    }
                    if self.core[m as usize] {
                        claims.push(m);
                    } else {
                        self.claims[m as usize].retain(|&c| c != d);
                    }
                }
                self.claims[d as usize] = claims;
            }
        }

        // Fresh union-find; transplant the unaffected components. `keep`
        // was gathered in ascending id order, so after the (root, id) sort
        // each group's first member is its minimum surviving core — the
        // root the batch pass would seed the component with.
        self.dsu = UnionFind::new(self.db.len() as u32);
        let mut keep = keep.to_vec();
        keep.sort_unstable();
        let mut k = 0;
        while k < keep.len() {
            let (root, anchor) = keep[k];
            let mut j = k + 1;
            while j < keep.len() && keep[j].0 == root {
                self.dsu.union(anchor, keep[j].1);
                j += 1;
            }
            k = j;
        }

        // Re-expand every surviving core of an affected component with a
        // fresh ε-query: their mutual unions rebuild exactly the
        // post-removal connectivity (splits fall out naturally), and their
        // claims re-land on bordering non-cores (duplicates are harmless —
        // the snapshot takes a min over live core claims).
        for batch in affected_cores.chunks(REPAIR_BATCH) {
            let hoods = self.batch_neighborhoods(batch);
            for (&c, hood) in batch.iter().zip(&hoods) {
                self.expand_core(c, hood);
            }
        }
    }

    /// Local repair: mark the new core flags, then re-expand exactly the
    /// dirty region — flipped segments get a fresh ε-query, new segments
    /// reuse the neighborhoods computed during the count update — unioning
    /// core–core edges and recording core→border claims.
    fn repair_locally(&mut self, first: u32, hoods: &[Vec<u32>], flips: &[u32]) {
        let n = self.db.len() as u32;
        for &b in flips {
            self.core[b as usize] = true;
        }
        for id in first..n {
            self.core[id as usize] = self.counts[id as usize] >= self.cluster.min_lns;
        }
        // Segments that became core *this* insertion, ascending (flips are
        // all below `first`, new ids at/above it). Their own expansions
        // record every edge they participate in; older cores' edges to new
        // non-core segments are recorded from the non-core side below.
        let mut fresh: Vec<u32> = flips.to_vec();
        fresh.extend((first..n).filter(|&id| self.core[id as usize]));
        for batch in flips.chunks(REPAIR_BATCH) {
            let flip_hoods = self.batch_neighborhoods(batch);
            for (&c, hood) in batch.iter().zip(&flip_hoods) {
                self.expand_core(c, hood);
            }
        }
        for (k, hood) in hoods.iter().enumerate() {
            let id = first + k as u32;
            if self.core[id as usize] {
                self.expand_core(id, hood);
            } else {
                for &m in hood {
                    if m != id && self.core[m as usize] && fresh.binary_search(&m).is_err() {
                        push_claim(&mut self.claims[id as usize], m);
                    }
                }
            }
        }
    }

    /// The ε-neighborhoods of `ids`, in `ids` order: computed on the
    /// configured worker threads ([`crate::Parallelism`]) when the batch
    /// clears [`MIN_PARALLEL_REPAIR`], sequentially otherwise. Each query
    /// is a pure read of the database and index, so the results — and
    /// everything the caller derives from them in `ids` order — are
    /// bit-identical either way; parallelism moves work, never output.
    fn batch_neighborhoods(&mut self, ids: &[u32]) -> Vec<Vec<u32>> {
        let threads = self.cluster.parallelism.thread_count().min(ids.len());
        if threads <= 1 || ids.len() < MIN_PARALLEL_REPAIR {
            let mut out = Vec::with_capacity(ids.len());
            for &id in ids {
                self.db
                    .neighborhood_into(&self.index, id, self.cluster.eps, &mut self.scratch);
                out.push(self.scratch.clone());
            }
            return out;
        }
        self.stats.repair_parallel_batches += 1;
        self.stats.repair_parallel_queries += ids.len() as u64;
        crate::shard::parallel_neighborhoods(&self.db, &self.index, ids, self.cluster.eps, threads)
    }

    /// One freshly core segment's expansion: union with every core
    /// neighbour, claim every non-core neighbour, and drop any claims made
    /// on the segment while it was still a border candidate.
    fn expand_core(&mut self, c: u32, hood: &[u32]) {
        self.claims[c as usize] = Vec::new();
        for &m in hood {
            if m == c {
                continue;
            }
            if self.core[m as usize] {
                self.dsu.union(c, m);
            } else {
                push_claim(&mut self.claims[m as usize], c);
            }
        }
    }

    /// The fallback: recompute counts, core flags, components, and claims
    /// from scratch over the whole database, against a freshly bulk-built
    /// index (undoing any R-tree degradation from incremental inserts).
    ///
    /// One ε-query per segment: `counts[id]` is fully determined by `id`'s
    /// own whole-database query, so `core[id]` is final the moment `id` is
    /// visited. Scanning ids ascending, a backward edge `(b, id)` with
    /// `b < id` therefore sees two final core flags and can be classified
    /// (union / claim) immediately; forward edges need no deferral because
    /// the distance is symmetric — the pair resurfaces as the backward
    /// edge of its later endpoint. (The sharded workers in [`crate::shard`]
    /// must defer instead, because a worker only ever queries its own
    /// members.)
    fn rebuild(&mut self) {
        let n = self.db.len() as u32;
        // The outgoing index carries prune tallies the lifetime stats must
        // keep; fold them in before the replacement drops it.
        self.stats.absorb_prune(self.index.prune_stats());
        let threads = self.cluster.parallelism.thread_count();
        self.index = self
            .db
            .build_index_parallel(self.cluster.index, self.cluster.eps, threads);
        self.index.set_pruning(self.cluster.pruning);
        self.dsu = UnionFind::new(n);
        let mut live_ids: Vec<u32> = Vec::with_capacity(self.db.live_len());
        for id in 0..n {
            if self.db.is_live(id) {
                live_ids.push(id);
            } else {
                self.counts[id as usize] = 0.0;
                self.core[id as usize] = false;
                self.claims[id as usize] = Vec::new();
            }
        }
        // Batched so a large window never retains more than one batch of
        // neighborhoods. Classification stays sequential and strictly
        // ascending: when the backward edge `(b, id)` is visited, `b < id`
        // has already been finalised — whether in this batch or an earlier
        // one — exactly as in the sequential scan.
        for batch in live_ids.chunks(REPAIR_BATCH) {
            let hoods = self.batch_neighborhoods(batch);
            for (&id, hood) in batch.iter().zip(&hoods) {
                self.counts[id as usize] = self
                    .db
                    .neighborhood_cardinality(hood, self.cluster.weighted);
                let id_core = self.counts[id as usize] >= self.cluster.min_lns;
                self.core[id as usize] = id_core;
                self.claims[id as usize] = Vec::new();
                for &b in hood.iter().take_while(|&&b| b < id) {
                    match (id_core, self.core[b as usize]) {
                        (true, true) => self.dsu.union(id, b),
                        (true, false) => push_claim(&mut self.claims[b as usize], id),
                        (false, true) => push_claim(&mut self.claims[id as usize], b),
                        (false, false) => {}
                    }
                }
            }
        }
    }

    /// The current clustering, identical to what the batch
    /// [`crate::LineSegmentClustering::run`] produces on the segments
    /// ingested so far: components are numbered in ascending minimum-core-id
    /// order (the sequential seed order), border segments join their
    /// earliest claiming component, and the Definition 10
    /// trajectory-cardinality filter runs last.
    pub fn snapshot(&self) -> Clustering {
        let n = self.db.len();
        let mut comp_of_root = vec![u32::MAX; n];
        let mut raw: Vec<Option<u32>> = vec![None; self.db.live_len()];
        let mut cluster_count = 0u32;
        // Live ids map to dense ranks monotonically, so walking the sparse
        // id space ascending visits dense slots ascending — components are
        // numbered in the batch pass's seed order.
        let mut dense = 0usize;
        for id in 0..n as u32 {
            if !self.db.is_live(id) {
                continue;
            }
            if self.core[id as usize] {
                let root = self.dsu.find_readonly(id) as usize;
                if comp_of_root[root] == u32::MAX {
                    comp_of_root[root] = cluster_count;
                    cluster_count += 1;
                }
                raw[dense] = Some(comp_of_root[root]);
            }
            dense += 1;
        }
        let mut dense = 0usize;
        for id in 0..n {
            if !self.db.is_live(id as u32) {
                continue;
            }
            if !self.core[id] {
                // Claim lists may carry cores a removal has retired or
                // demoted since; only currently live core claims count.
                raw[dense] = self.claims[id]
                    .iter()
                    .filter(|&&c| self.core[c as usize])
                    .map(|&c| comp_of_root[self.dsu.find_readonly(c) as usize])
                    .min();
            }
            dense += 1;
        }
        finalize_raw(
            &self.live_database(),
            &raw,
            cluster_count,
            self.cluster.trajectory_threshold(),
        )
    }

    /// Consumes the engine and returns the full pipeline outcome — the
    /// current clustering plus one representative trajectory per cluster,
    /// exactly as [`crate::Traclus::run`] would deliver for the live
    /// window's trajectories.
    pub fn finish(self) -> TraclusOutcome<D> {
        let clustering = self.snapshot();
        let db = if self.db.live_len() == self.db.len() {
            self.db
        } else {
            self.db.compact_live()
        };
        crate::attach_representatives(&self.config, db, clustering)
    }
}

/// Appends a claiming core, compacting (sort + dedup) only when the list
/// is both past [`CLAIM_DEDUP_LEN`] and out of capacity, then reserving
/// headroom proportional to the distinct count — so a border segment with
/// `k` distinct claiming cores pays O(k log k) per *doubling*, not per
/// push. Duplicates are harmless for correctness (the snapshot takes a
/// min); compaction only bounds memory.
fn push_claim(claims: &mut Vec<u32>, core_id: u32) {
    if claims.len() >= CLAIM_DEDUP_LEN && claims.len() == claims.capacity() {
        claims.sort_unstable();
        claims.dedup();
        claims.reserve(claims.len().max(CLAIM_DEDUP_LEN));
    }
    claims.push(core_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineSegmentClustering;
    use traclus_geom::{Point2, TrajectoryId};

    /// A straight horizontal trajectory at height `y` with `points` fixes.
    fn corridor(id: u32, y: f64, points: usize) -> Trajectory<2> {
        Trajectory::new(
            TrajectoryId(id),
            (0..points).map(|k| Point2::xy(k as f64 * 5.0, y)).collect(),
        )
    }

    fn config(eps: f64, min_lns: usize) -> TraclusConfig {
        TraclusConfig {
            eps,
            min_lns,
            ..TraclusConfig::default()
        }
    }

    fn batch_clustering(config: &TraclusConfig, trajectories: &[Trajectory<2>]) -> Clustering {
        let db =
            SegmentDatabase::from_trajectories(trajectories, &config.partition, config.distance);
        LineSegmentClustering::new(&db, config.cluster_config()).run()
    }

    #[test]
    fn empty_engine_snapshot_is_empty() {
        let engine = IncrementalClustering::<2>::new(config(2.0, 3));
        let snap = engine.snapshot();
        assert!(snap.clusters.is_empty());
        assert!(snap.labels.is_empty());
        assert!(engine.is_empty());
    }

    #[test]
    fn degenerate_trajectories_produce_no_segments() {
        let mut engine = IncrementalClustering::<2>::new(config(2.0, 3));
        // Single point: nothing to partition.
        let report = engine.insert(&Trajectory::new(
            TrajectoryId(0),
            vec![Point2::xy(1.0, 1.0)],
        ));
        assert_eq!(report, InsertReport::default());
        // All points identical: every partition is degenerate and dropped.
        let report = engine.insert(&Trajectory::new(
            TrajectoryId(1),
            vec![Point2::xy(2.0, 2.0); 5],
        ));
        assert_eq!(report.new_segments, 0);
        assert!(engine.is_empty());
        assert_eq!(engine.stats().trajectories, 2);
    }

    #[test]
    fn streaming_matches_batch_on_growing_corridor() {
        let trajectories: Vec<Trajectory<2>> =
            (0..7).map(|i| corridor(i, i as f64 * 0.4, 20)).collect();
        let cfg = config(3.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        for k in 0..trajectories.len() {
            engine.insert(&trajectories[k]);
            // The invariant is strong: after EVERY insertion the snapshot
            // equals the batch run on the prefix, label for label.
            assert_eq!(
                engine.snapshot(),
                batch_clustering(&cfg, &trajectories[..=k]),
                "diverged after trajectory {k}"
            );
        }
        assert_eq!(engine.stats().trajectories, 7);
        assert_eq!(engine.len(), engine.snapshot().labels.len());
    }

    #[test]
    fn late_arrival_flips_borders_to_core() {
        // Two trajectories are too sparse to cluster; the third makes the
        // earlier segments core retroactively.
        let trajectories: Vec<Trajectory<2>> =
            (0..3).map(|i| corridor(i, i as f64 * 0.3, 15)).collect();
        let cfg = config(2.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.insert(&trajectories[0]);
        engine.insert(&trajectories[1]);
        assert!(
            engine.snapshot().clusters.is_empty(),
            "not dense enough yet"
        );
        let report = engine.insert(&trajectories[2]);
        assert!(
            report.rebuilt || report.flipped_cores > 0,
            "third corridor must promote earlier segments"
        );
        let snap = engine.snapshot();
        assert_eq!(snap.clusters.len(), 1);
        assert_eq!(snap, batch_clustering(&cfg, &trajectories));
    }

    #[test]
    fn bridge_trajectory_merges_two_clusters() {
        // Two far-apart corridors cluster separately; a later bridge at an
        // intermediate height connects them into one component.
        let mut trajectories: Vec<Trajectory<2>> = Vec::new();
        for i in 0..4 {
            trajectories.push(corridor(i, i as f64 * 0.3, 15));
        }
        for i in 0..4 {
            trajectories.push(corridor(10 + i, 4.0 + i as f64 * 0.3, 15));
        }
        let cfg = config(2.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        assert_eq!(
            engine.snapshot().clusters.len(),
            2,
            "two separate corridors"
        );
        // The bridge sits within ε of the top of band A (y = 0.9) and the
        // bottom of band B (y = 4.0), and is itself core.
        trajectories.push(corridor(99, 2.45, 15));
        engine.insert(trajectories.last().unwrap());
        let snap = engine.snapshot();
        assert_eq!(snap.clusters.len(), 1, "bridge merges the components");
        assert_eq!(snap, batch_clustering(&cfg, &trajectories));
    }

    #[test]
    fn rebuild_thresholds_change_work_not_results() {
        let trajectories: Vec<Trajectory<2>> =
            (0..6).map(|i| corridor(i, i as f64 * 0.4, 18)).collect();
        let base = config(3.0, 3);
        let mut snapshots = Vec::new();
        for threshold in [0.0, 0.25, 1.0] {
            let cfg = TraclusConfig {
                stream: StreamConfig {
                    rebuild_threshold: threshold,
                    ..StreamConfig::default()
                },
                ..base
            };
            let mut engine = IncrementalClustering::<2>::new(cfg);
            engine.extend(&trajectories);
            if threshold == 0.0 {
                assert_eq!(
                    engine.stats().local_repairs,
                    0,
                    "threshold 0 must always rebuild"
                );
            }
            if threshold >= 1.0 {
                assert_eq!(
                    engine.stats().full_rebuilds,
                    0,
                    "threshold ≥ 1 must never rebuild"
                );
            }
            snapshots.push(engine.snapshot());
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
        assert_eq!(snapshots[0], batch_clustering(&base, &trajectories));
    }

    #[test]
    fn removal_matches_batch_on_live_window() {
        let trajectories: Vec<Trajectory<2>> =
            (0..7).map(|i| corridor(i, i as f64 * 0.4, 20)).collect();
        let cfg = config(3.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        // Remove from the middle, the front, and the back; after every
        // removal the snapshot equals the batch run on the survivors.
        let mut live = trajectories.clone();
        for id in [3u32, 0, 6] {
            let report = engine.remove_trajectory(TrajectoryId(id));
            assert_eq!(report.removed_trajectories, 1);
            assert!(report.removed_segments > 0);
            live.retain(|t| t.id != TrajectoryId(id));
            assert_eq!(
                engine.snapshot(),
                batch_clustering(&cfg, &live),
                "after removing {id}"
            );
        }
        assert_eq!(engine.live_trajectories(), 4);
        assert_eq!(engine.stats().removals, 3);
        // Unknown or already-removed trajectories are a no-op.
        assert_eq!(
            engine.remove_trajectory(TrajectoryId(3)),
            RemoveReport::default()
        );
    }

    #[test]
    fn bridge_removal_splits_cluster_via_local_repair() {
        // Two corridors held together by one bridge trajectory. Removing
        // the bridge must split the component back in two — through the
        // scoped repair path, pinned by an unreachable rebuild threshold.
        let mut trajectories: Vec<Trajectory<2>> = Vec::new();
        for i in 0..4 {
            trajectories.push(corridor(i, i as f64 * 0.3, 15));
        }
        for i in 0..4 {
            trajectories.push(corridor(10 + i, 4.0 + i as f64 * 0.3, 15));
        }
        trajectories.push(corridor(99, 2.45, 15));
        let cfg = TraclusConfig {
            stream: StreamConfig {
                rebuild_threshold: 10.0,
                ..StreamConfig::default()
            },
            ..config(2.0, 3)
        };
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        assert_eq!(engine.snapshot().clusters.len(), 1, "bridge merges all");

        let report = engine.remove_trajectory(TrajectoryId(99));
        assert!(!report.rebuilt, "threshold 10 pins local repair");
        assert_eq!(engine.stats().decremental_repairs, 1);
        assert_eq!(engine.stats().decremental_rebuilds, 0);
        trajectories.pop();
        let snap = engine.snapshot();
        assert_eq!(snap.clusters.len(), 2, "removal splits the component");
        assert_eq!(snap, batch_clustering(&cfg, &trajectories));
    }

    #[test]
    fn removal_demotes_cores_to_noise() {
        // Exactly MinLns corridors: every segment is core. Dropping one
        // corridor pushes the survivors below the threshold — demotion to
        // noise, and an empty clustering.
        let trajectories: Vec<Trajectory<2>> =
            (0..3).map(|i| corridor(i, i as f64 * 0.3, 15)).collect();
        let cfg = config(2.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        assert!(!engine.snapshot().clusters.is_empty());
        let report = engine.remove_trajectory(TrajectoryId(1));
        assert!(report.demoted_cores > 0, "survivors fall below MinLns");
        assert_eq!(engine.stats().core_demotions, report.demoted_cores);
        let snap = engine.snapshot();
        assert!(snap.clusters.is_empty(), "no cores survive");
        let live = vec![trajectories[0].clone(), trajectories[2].clone()];
        assert_eq!(snap, batch_clustering(&cfg, &live));
    }

    #[test]
    fn removed_trajectory_id_can_be_reinserted() {
        let cfg = config(3.0, 3);
        let trajectories: Vec<Trajectory<2>> =
            (0..5).map(|i| corridor(i, i as f64 * 0.4, 18)).collect();
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        engine.remove_trajectory(TrajectoryId(2));
        // The trajectory id is reusable; its segments get fresh slots.
        engine.insert(&trajectories[2]);
        let mut live = trajectories.clone();
        live.retain(|t| t.id != TrajectoryId(2));
        live.push(trajectories[2].clone());
        assert_eq!(engine.snapshot(), batch_clustering(&cfg, &live));
        assert_eq!(engine.live_trajectories(), 5);
    }

    #[test]
    fn capacity_window_keeps_newest() {
        let cfg = TraclusConfig {
            stream: StreamConfig {
                capacity: Some(3),
                ..StreamConfig::default()
            },
            ..config(3.0, 2)
        };
        let trajectories: Vec<Trajectory<2>> =
            (0..8).map(|i| corridor(i, i as f64 * 0.4, 18)).collect();
        let mut engine = IncrementalClustering::<2>::new(cfg);
        for (k, t) in trajectories.iter().enumerate() {
            let report = engine.insert(t);
            if k >= 3 {
                assert_eq!(report.expired_trajectories, 1, "one in, one out");
            }
            let lo = k.saturating_sub(2);
            assert_eq!(
                engine.snapshot(),
                batch_clustering(&cfg, &trajectories[lo..=k]),
                "window after insert {k}"
            );
        }
        assert_eq!(engine.live_trajectories(), 3);
        assert_eq!(engine.stats().expired, 5);
        assert_eq!(engine.stats().removals, 5);
    }

    #[test]
    fn explicit_expiry_helpers() {
        let cfg = config(3.0, 2);
        let trajectories: Vec<Trajectory<2>> =
            (0..6).map(|i| corridor(i, i as f64 * 0.4, 18)).collect();
        let mut engine = IncrementalClustering::<2>::new(cfg);
        for (k, t) in trajectories.iter().enumerate() {
            engine.insert_at(t, 10 * (k as u64 + 1));
        }
        // Timestamps are 10..=60; cutting below 31 drops the first three.
        let report = engine.expire_older_than(31);
        assert_eq!(report.removed_trajectories, 3);
        assert_eq!(
            engine.snapshot(),
            batch_clustering(&cfg, &trajectories[3..])
        );
        let report = engine.expire_to_capacity(1);
        assert_eq!(report.removed_trajectories, 2);
        assert_eq!(
            engine.snapshot(),
            batch_clustering(&cfg, &trajectories[5..])
        );
        assert_eq!(engine.stats().expired, 5);
    }

    #[test]
    fn parallel_repair_is_identical_to_sequential() {
        use crate::Parallelism;
        // rebuild_threshold 0 forces the full re-cluster on every
        // operation, so once the window holds ≥ MIN_PARALLEL_REPAIR live
        // segments every rebuild's query sweep crosses the parallelism
        // floor and actually engages the workers.
        let trajectories: Vec<Trajectory<2>> =
            (0..40).map(|i| corridor(i, i as f64 * 0.2, 12)).collect();
        let with = |parallelism| TraclusConfig {
            parallelism,
            stream: StreamConfig {
                rebuild_threshold: 0.0,
                ..StreamConfig::default()
            },
            ..config(3.0, 3)
        };
        let mut sequential = IncrementalClustering::<2>::new(with(Parallelism::Sequential));
        let mut reference = Vec::new();
        for t in &trajectories {
            sequential.insert(t);
            reference.push(sequential.snapshot());
        }
        sequential.remove_trajectory(TrajectoryId(7));
        let after_removal = sequential.snapshot();
        assert_eq!(
            sequential.stats().repair_parallel_batches,
            0,
            "sequential engine must never fan out"
        );
        for threads in [2usize, 4, 8] {
            let mut engine = IncrementalClustering::<2>::new(with(Parallelism::Threads(threads)));
            for (k, t) in trajectories.iter().enumerate() {
                engine.insert(t);
                assert_eq!(
                    engine.snapshot(),
                    reference[k],
                    "t={threads} diverged after trajectory {k}"
                );
            }
            engine.remove_trajectory(TrajectoryId(7));
            assert_eq!(
                engine.snapshot(),
                after_removal,
                "t={threads} diverged after removal"
            );
            let stats = engine.stats();
            assert!(
                stats.repair_parallel_batches > 0,
                "t={threads} never engaged the parallel path"
            );
            assert!(stats.repair_parallel_queries >= MIN_PARALLEL_REPAIR as u64);
        }
    }

    #[test]
    fn window_boundary_expires_equal_timestamps_atomically() {
        // Three tracks share one ingest timestamp under a window of 50:
        // they must survive at age 49 and all expire together — in one
        // batch — the moment their age reaches the window.
        let cfg = TraclusConfig {
            stream: StreamConfig {
                time_window: Some(50),
                ..StreamConfig::default()
            },
            ..config(3.0, 2)
        };
        let trajectories: Vec<Trajectory<2>> =
            (0..3).map(|i| corridor(i, i as f64 * 0.4, 18)).collect();
        let mut engine = IncrementalClustering::<2>::new(cfg);
        for t in &trajectories {
            engine.insert_at(t, 100);
        }
        assert_eq!(engine.live_trajectories(), 3);
        // Probes far outside ε of the corridor band, so expiry is the only
        // thing they change. Age 49 < w: everything survives…
        let report = engine.insert_at(&corridor(90, 500.0, 18), 149);
        assert_eq!(report.expired_trajectories, 0);
        assert_eq!(engine.live_trajectories(), 4);
        // …age exactly w: the whole equal-timestamp batch goes at once.
        let report = engine.insert_at(&corridor(91, 600.0, 18), 150);
        assert_eq!(report.expired_trajectories, 3, "boundary is inclusive");
        assert_eq!(engine.live_trajectories(), 2);
        // The snapshot still equals the batch run over the survivors.
        let survivors = vec![corridor(90, 500.0, 18), corridor(91, 600.0, 18)];
        assert_eq!(engine.snapshot(), batch_clustering(&cfg, &survivors));

        // The explicit helper is exclusive at its cutoff, by contrast: a
        // trajectory stamped exactly `cutoff` survives.
        let cfg = config(3.0, 2);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        for t in &trajectories {
            engine.insert_at(t, 100);
        }
        assert_eq!(engine.expire_older_than(100), RemoveReport::default());
        assert_eq!(engine.live_trajectories(), 3);
        let report = engine.expire_older_than(101);
        assert_eq!(report.removed_trajectories, 3);
        assert!(engine.is_empty() || engine.live_trajectories() == 0);
        assert!(engine.snapshot().clusters.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn backwards_timestamps_rejected() {
        let mut engine = IncrementalClustering::<2>::new(config(3.0, 3));
        engine.insert_at(&corridor(0, 0.0, 10), 100);
        engine.insert_at(&corridor(1, 0.4, 10), 99);
    }

    #[test]
    fn finish_attaches_representatives() {
        let trajectories: Vec<Trajectory<2>> =
            (0..5).map(|i| corridor(i, i as f64 * 0.4, 20)).collect();
        let cfg = config(3.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        let outcome = engine.finish();
        assert_eq!(outcome.clusters.len(), outcome.clustering.clusters.len());
        assert!(!outcome.clusters.is_empty());
        for c in &outcome.clusters {
            assert!(c.representative.points.len() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "ε must be > 0")]
    fn non_positive_eps_rejected() {
        let _ = IncrementalClustering::<2>::new(config(0.0, 3));
    }
}
