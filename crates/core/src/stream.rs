//! Streaming/incremental clustering: ingest trajectories one at a time.
//!
//! The paper's framework (Figure 4) is batch-oriented: partition every
//! trajectory, then group all segments at once. Serving-style workloads
//! instead see trajectories arrive one by one — a new storm track, a new
//! vehicle trace — and want the clustering kept current without re-running
//! the grouping phase from scratch on every arrival. This module provides
//! [`IncrementalClustering`], an online engine that
//!
//! 1. runs MDL partitioning (Section 3) on each arriving trajectory
//!    immediately ([`crate::partition::partition_trajectory_from`]),
//! 2. appends the resulting segments to the shared [`SegmentDatabase`] and
//!    inserts them into the live spatial index (the R-tree's Guttman
//!    insertion path, or grid-cell hashing — [`NeighborIndex::insert`]),
//! 3. repairs cluster state **locally**: the ε-neighborhoods (Definition 4)
//!    of the new segments are expanded, neighborhood cardinalities of
//!    affected segments are updated in place, segments whose core-ness
//!    (Definition 5) flips are re-expanded, and a union-find over core
//!    segments (the same min-root machinery as the sharded parallel path in
//!    [`crate::shard`]) folds newly connected components together.
//!
//! # Exactness
//!
//! Local repair is not an approximation. Core-ness is intrinsic (it depends
//! only on the database, never on arrival order), clusters restricted to
//! cores are the connected components of the core-adjacency graph, and
//! non-core border segments join the earliest claiming component — all
//! order-free quantities, the same argument that makes the sharded parallel
//! path exact. Insertion only ever *adds* ε-edges and *promotes* segments
//! to core (for non-negative weights), so maintaining counts, a monotone
//! union-find, and per-border claim lists reproduces the batch state after
//! every insertion: [`IncrementalClustering::snapshot`] equals
//! [`crate::LineSegmentClustering::run`] on the same prefix of the stream,
//! label for label. The equivalence suite
//! (`crates/core/tests/streaming_equivalence.rs`) locks this down on
//! hurricane, grid, and random-walk fixtures, including mid-stream
//! prefixes.
//!
//! # The dirty-region threshold
//!
//! One insertion's repair cost is proportional to its *dirty region*: the
//! new segments plus every existing segment whose core-ness flipped (each
//! needs one ε-expansion). A trajectory crossing a near-threshold region
//! can flip a large fraction of the database at once; past that point,
//! local repair costs as much as re-clustering while leaving the
//! incrementally grown R-tree less balanced than a fresh STR bulk load.
//! [`StreamConfig::rebuild_threshold`] caps the dirty fraction: when one
//! insertion dirties more than that fraction of the database, the engine
//! falls back to a full re-cluster (recomputing counts, cores, components,
//! and claims from scratch) and rebuilds the spatial index. The fallback
//! changes *when* work happens, never the result.
//!
//! Demotions cannot happen under non-negative weights; if a negative
//! segment weight does drop a core segment below `MinLns` (the weighted
//! Section 4.2 extension puts no sign constraint on weights), the engine
//! detects the demotion and forces the full re-cluster, because a monotone
//! union-find cannot un-merge.

use traclus_geom::Trajectory;

use crate::cluster::{finalize_raw, ClusterConfig, Clustering};
use crate::partition::partition_trajectory_from;
use crate::segment_db::{NeighborIndex, SegmentDatabase};
use crate::shard::UnionFind;
use crate::{TraclusConfig, TraclusOutcome};

/// Maintenance knobs of the incremental engine — the run-time parameters
/// of *streaming* operation, next to the paper's statistical ones in
/// [`TraclusConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Dirty-region fraction above which one insertion triggers a full
    /// re-cluster (and index rebuild) instead of local repair.
    ///
    /// `0.0` re-clusters on every insertion (the naive baseline), values
    /// `≥ 1.0` never re-cluster; the default `0.25` re-clusters only when a
    /// single trajectory flips a quarter of the database. The choice never
    /// affects the resulting clustering, only where the work is spent.
    pub rebuild_threshold: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            rebuild_threshold: 0.25,
        }
    }
}

/// What one [`IncrementalClustering::insert`] did, for observability and
/// back-pressure decisions in serving loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertReport {
    /// Segments the MDL partitioner produced for this trajectory.
    pub new_segments: usize,
    /// Existing segments whose core-ness flipped and were re-expanded.
    pub flipped_cores: usize,
    /// Whether the dirty-region threshold forced a full re-cluster.
    pub rebuilt: bool,
}

/// Cumulative counters over the lifetime of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Trajectories ingested (including ones that partitioned to nothing).
    pub trajectories: usize,
    /// Segments appended to the database.
    pub segments: usize,
    /// Existing segments promoted to core by a later insertion.
    pub core_flips: usize,
    /// Insertions resolved by local repair.
    pub local_repairs: usize,
    /// Insertions resolved by the full re-cluster fallback.
    pub full_rebuilds: usize,
}

/// The online TRACLUS engine: accepts one trajectory at a time and keeps
/// the line-segment clustering current.
///
/// Construct it from a [`TraclusConfig`] (directly or via
/// [`crate::Traclus::stream`]), feed trajectories with [`Self::insert`],
/// read the clustering at any point with [`Self::snapshot`], and finish
/// with [`Self::finish`] for the full pipeline outcome including
/// representative trajectories (Section 4.3).
///
/// ```
/// use traclus_core::{IncrementalClustering, Traclus, TraclusConfig};
/// use traclus_geom::{Point2, Trajectory, TrajectoryId};
///
/// // Eight trajectories sharing one horizontal corridor.
/// let trajectories: Vec<Trajectory<2>> = (0..8)
///     .map(|i| {
///         Trajectory::new(
///             TrajectoryId(i),
///             (0..25)
///                 .map(|k| Point2::xy(k as f64 * 4.0, i as f64 * 0.3))
///                 .collect(),
///         )
///     })
///     .collect();
/// let config = TraclusConfig {
///     eps: 5.0,
///     min_lns: 3,
///     ..TraclusConfig::default()
/// };
///
/// // Stream them in one at a time…
/// let mut engine = IncrementalClustering::<2>::new(config);
/// for tr in &trajectories {
///     engine.insert(tr);
/// }
///
/// // …and the result is the batch clustering, label for label.
/// let batch = Traclus::new(config).run(&trajectories);
/// assert_eq!(engine.snapshot(), batch.clustering);
/// ```
#[derive(Clone)]
pub struct IncrementalClustering<const D: usize> {
    config: TraclusConfig,
    cluster: ClusterConfig,
    stream: StreamConfig,
    db: SegmentDatabase<D>,
    index: NeighborIndex<D>,
    /// `|Nε(L)|` per segment (weighted when configured; self included),
    /// maintained incrementally in ascending-id accumulation order — the
    /// same order the batch pass sums in, so the values are bit-identical.
    counts: Vec<f64>,
    /// Definition 5 core flags, monotone under insertion (for non-negative
    /// weights).
    core: Vec<bool>,
    /// Union-find over core segments; min-root, so a component's root is
    /// its minimum core id.
    dsu: UnionFind,
    /// For each non-core segment: core ids within ε that claim it as a
    /// border member (cleared if the segment later becomes core itself).
    claims: Vec<Vec<u32>>,
    stats: StreamStats,
    /// Reusable neighborhood scratch.
    scratch: Vec<u32>,
}

/// Claim lists are deduplicated once they outgrow this many entries
/// (weighted databases can have non-core segments with arbitrarily many
/// core neighbours; unweighted ones are bounded by `MinLns` anyway).
const CLAIM_DEDUP_LEN: usize = 16;

impl<const D: usize> IncrementalClustering<D> {
    /// An empty engine bound to a pipeline configuration (the `stream`
    /// field supplies the maintenance knobs).
    pub fn new(config: TraclusConfig) -> Self {
        assert!(config.eps > 0.0 && config.eps.is_finite(), "ε must be > 0");
        assert!(config.min_lns >= 1, "MinLns must be ≥ 1");
        let cluster = config.cluster_config();
        let db = SegmentDatabase::from_segments(Vec::new(), config.distance);
        let index = db.build_index(cluster.index, cluster.eps);
        Self {
            config,
            cluster,
            stream: config.stream,
            db,
            index,
            counts: Vec::new(),
            core: Vec::new(),
            dsu: UnionFind::new(0),
            claims: Vec::new(),
            stats: StreamStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &TraclusConfig {
        &self.config
    }

    /// The growing segment database (phase 1 output so far).
    pub fn database(&self) -> &SegmentDatabase<D> {
        &self.db
    }

    /// Number of segments ingested so far.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True before the first segment-producing insertion.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Lifetime counters (trajectories, segments, flips, rebuilds).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Ingests one trajectory: partitions it (Figure 8), appends and
    /// indexes its segments, and repairs cluster state — locally when the
    /// dirty region stays under [`StreamConfig::rebuild_threshold`], by a
    /// full re-cluster otherwise. Returns what happened.
    pub fn insert(&mut self, trajectory: &Trajectory<D>) -> InsertReport {
        self.stats.trajectories += 1;
        let first = self.db.len() as u32;
        let segments = partition_trajectory_from(&self.config.partition, trajectory, first);
        let new_count = segments.len();
        self.stats.segments += new_count;
        if new_count == 0 {
            return InsertReport::default();
        }
        self.db.append_segments(segments);
        let n = self.db.len() as u32;
        for id in first..n {
            self.index.insert(id, self.db.bbox_of(id));
            self.counts.push(0.0);
            self.core.push(false);
            self.claims.push(Vec::new());
            self.dsu.push();
        }

        // ε-neighborhoods of every new segment, against the whole database
        // (new segments included — they are already indexed).
        let mut hoods: Vec<Vec<u32>> = Vec::with_capacity(new_count);
        for id in first..n {
            self.db
                .neighborhood_into(&self.index, id, self.cluster.eps, &mut self.scratch);
            hoods.push(self.scratch.clone());
        }

        // Update cardinalities: each new segment gets its full neighborhood
        // sum; each pre-existing neighbour gains the new segment's
        // contribution. Both accumulate in ascending-id order, matching the
        // batch pass bit for bit.
        let mut touched: Vec<u32> = Vec::new();
        for (k, hood) in hoods.iter().enumerate() {
            let id = first + k as u32;
            self.counts[id as usize] = self
                .db
                .neighborhood_cardinality(hood, self.cluster.weighted);
            let gain = if self.cluster.weighted {
                self.db.segment(id).weight
            } else {
                1.0
            };
            for &b in hood {
                if b < first {
                    self.counts[b as usize] += gain;
                    touched.push(b);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        // Segments whose core-ness flipped. Promotions are repaired
        // locally; a demotion (possible only with negative weights) cannot
        // be — the union-find is monotone — so it forces the rebuild path.
        let mut flips: Vec<u32> = Vec::new();
        let mut demoted = false;
        for &b in &touched {
            let is_core_now = self.counts[b as usize] >= self.cluster.min_lns;
            match (self.core[b as usize], is_core_now) {
                (false, true) => flips.push(b),
                (true, false) => demoted = true,
                _ => {}
            }
        }
        let flipped_cores = flips.len();

        let dirty = new_count + flipped_cores;
        let rebuilt =
            demoted || (dirty as f64) > self.stream.rebuild_threshold * self.db.len() as f64;
        if rebuilt {
            self.rebuild();
            self.stats.full_rebuilds += 1;
        } else {
            self.repair_locally(first, &hoods, &flips);
            self.stats.local_repairs += 1;
        }
        self.stats.core_flips += flipped_cores;
        #[cfg(feature = "invariant-checks")]
        self.debug_check_insert(first, &flips);
        InsertReport {
            new_segments: new_count,
            flipped_cores,
            rebuilt,
        }
    }

    /// Post-insertion sanitizer pass (`invariant-checks` feature only):
    /// union-find canonical form, SoA/AoS coherence, incrementally grown
    /// index vs full scan on the dirty region, and — at power-of-two
    /// trajectory counts, so the extra work stays O(log n) batch runs over
    /// a stream — the full snapshot == batch spot check.
    #[cfg(feature = "invariant-checks")]
    fn debug_check_insert(&self, first: u32, flips: &[u32]) {
        crate::invariants::assert_union_find_canonical(&self.dsu, "stream-insert");
        crate::invariants::assert_soa_coherent(&self.db, "stream-insert");
        let mut dirty: Vec<u32> = (first..self.db.len() as u32).collect();
        dirty.extend_from_slice(flips);
        crate::invariants::assert_index_consistent(
            &self.db,
            &self.index,
            self.cluster.eps,
            &dirty,
            "stream-insert",
        );
        if self.stats.trajectories.is_power_of_two() {
            let batch = crate::cluster::LineSegmentClustering::new(&self.db, self.cluster).run();
            assert!(
                self.snapshot() == batch,
                "invariant-checks[stream-insert]: snapshot diverged from the \
                 batch run at {} trajectories / {} segments",
                self.stats.trajectories,
                self.db.len()
            );
        }
    }

    /// Ingests a whole sequence, returning the number of trajectories.
    pub fn extend<'a>(
        &mut self,
        trajectories: impl IntoIterator<Item = &'a Trajectory<D>>,
    ) -> usize {
        let mut count = 0;
        for tr in trajectories {
            self.insert(tr);
            count += 1;
        }
        count
    }

    /// Local repair: mark the new core flags, then re-expand exactly the
    /// dirty region — flipped segments get a fresh ε-query, new segments
    /// reuse the neighborhoods computed during the count update — unioning
    /// core–core edges and recording core→border claims.
    fn repair_locally(&mut self, first: u32, hoods: &[Vec<u32>], flips: &[u32]) {
        let n = self.db.len() as u32;
        for &b in flips {
            self.core[b as usize] = true;
        }
        for id in first..n {
            self.core[id as usize] = self.counts[id as usize] >= self.cluster.min_lns;
        }
        // Segments that became core *this* insertion, ascending (flips are
        // all below `first`, new ids at/above it). Their own expansions
        // record every edge they participate in; older cores' edges to new
        // non-core segments are recorded from the non-core side below.
        let mut fresh: Vec<u32> = flips.to_vec();
        fresh.extend((first..n).filter(|&id| self.core[id as usize]));
        for &c in flips {
            self.db
                .neighborhood_into(&self.index, c, self.cluster.eps, &mut self.scratch);
            let hood = std::mem::take(&mut self.scratch);
            self.expand_core(c, &hood);
            self.scratch = hood;
        }
        for (k, hood) in hoods.iter().enumerate() {
            let id = first + k as u32;
            if self.core[id as usize] {
                self.expand_core(id, hood);
            } else {
                for &m in hood {
                    if m != id && self.core[m as usize] && fresh.binary_search(&m).is_err() {
                        push_claim(&mut self.claims[id as usize], m);
                    }
                }
            }
        }
    }

    /// One freshly core segment's expansion: union with every core
    /// neighbour, claim every non-core neighbour, and drop any claims made
    /// on the segment while it was still a border candidate.
    fn expand_core(&mut self, c: u32, hood: &[u32]) {
        self.claims[c as usize] = Vec::new();
        for &m in hood {
            if m == c {
                continue;
            }
            if self.core[m as usize] {
                self.dsu.union(c, m);
            } else {
                push_claim(&mut self.claims[m as usize], c);
            }
        }
    }

    /// The fallback: recompute counts, core flags, components, and claims
    /// from scratch over the whole database, against a freshly bulk-built
    /// index (undoing any R-tree degradation from incremental inserts).
    ///
    /// One ε-query per segment: `counts[id]` is fully determined by `id`'s
    /// own whole-database query, so `core[id]` is final the moment `id` is
    /// visited. Scanning ids ascending, a backward edge `(b, id)` with
    /// `b < id` therefore sees two final core flags and can be classified
    /// (union / claim) immediately; forward edges need no deferral because
    /// the distance is symmetric — the pair resurfaces as the backward
    /// edge of its later endpoint. (The sharded workers in [`crate::shard`]
    /// must defer instead, because a worker only ever queries its own
    /// members.)
    fn rebuild(&mut self) {
        let n = self.db.len() as u32;
        self.index = self.db.build_index(self.cluster.index, self.cluster.eps);
        self.dsu = UnionFind::new(n);
        for id in 0..n {
            self.db
                .neighborhood_into(&self.index, id, self.cluster.eps, &mut self.scratch);
            self.counts[id as usize] = self
                .db
                .neighborhood_cardinality(&self.scratch, self.cluster.weighted);
            let id_core = self.counts[id as usize] >= self.cluster.min_lns;
            self.core[id as usize] = id_core;
            self.claims[id as usize] = Vec::new();
            let hood = std::mem::take(&mut self.scratch);
            for &b in hood.iter().take_while(|&&b| b < id) {
                match (id_core, self.core[b as usize]) {
                    (true, true) => self.dsu.union(id, b),
                    (true, false) => push_claim(&mut self.claims[b as usize], id),
                    (false, true) => push_claim(&mut self.claims[id as usize], b),
                    (false, false) => {}
                }
            }
            self.scratch = hood;
        }
    }

    /// The current clustering, identical to what the batch
    /// [`crate::LineSegmentClustering::run`] produces on the segments
    /// ingested so far: components are numbered in ascending minimum-core-id
    /// order (the sequential seed order), border segments join their
    /// earliest claiming component, and the Definition 10
    /// trajectory-cardinality filter runs last.
    pub fn snapshot(&self) -> Clustering {
        let n = self.db.len();
        let mut comp_of_root = vec![u32::MAX; n];
        let mut raw: Vec<Option<u32>> = vec![None; n];
        let mut cluster_count = 0u32;
        for id in 0..n as u32 {
            if !self.core[id as usize] {
                continue;
            }
            let root = self.dsu.find_readonly(id) as usize;
            if comp_of_root[root] == u32::MAX {
                comp_of_root[root] = cluster_count;
                cluster_count += 1;
            }
            raw[id as usize] = Some(comp_of_root[root]);
        }
        for id in 0..n {
            if self.core[id] || self.claims[id].is_empty() {
                continue;
            }
            let comp = self.claims[id]
                .iter()
                .map(|&c| comp_of_root[self.dsu.find_readonly(c) as usize])
                .min()
                .expect("non-empty claim list");
            raw[id] = Some(comp);
        }
        finalize_raw(
            &self.db,
            &raw,
            cluster_count,
            self.cluster.trajectory_threshold(),
        )
    }

    /// Consumes the engine and returns the full pipeline outcome — the
    /// current clustering plus one representative trajectory per cluster,
    /// exactly as [`crate::Traclus::run`] would deliver for the ingested
    /// trajectories.
    pub fn finish(self) -> TraclusOutcome<D> {
        let clustering = self.snapshot();
        crate::attach_representatives(&self.config, self.db, clustering)
    }
}

/// Appends a claiming core, compacting (sort + dedup) only when the list
/// is both past [`CLAIM_DEDUP_LEN`] and out of capacity, then reserving
/// headroom proportional to the distinct count — so a border segment with
/// `k` distinct claiming cores pays O(k log k) per *doubling*, not per
/// push. Duplicates are harmless for correctness (the snapshot takes a
/// min); compaction only bounds memory.
fn push_claim(claims: &mut Vec<u32>, core_id: u32) {
    if claims.len() >= CLAIM_DEDUP_LEN && claims.len() == claims.capacity() {
        claims.sort_unstable();
        claims.dedup();
        claims.reserve(claims.len().max(CLAIM_DEDUP_LEN));
    }
    claims.push(core_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineSegmentClustering;
    use traclus_geom::{Point2, TrajectoryId};

    /// A straight horizontal trajectory at height `y` with `points` fixes.
    fn corridor(id: u32, y: f64, points: usize) -> Trajectory<2> {
        Trajectory::new(
            TrajectoryId(id),
            (0..points).map(|k| Point2::xy(k as f64 * 5.0, y)).collect(),
        )
    }

    fn config(eps: f64, min_lns: usize) -> TraclusConfig {
        TraclusConfig {
            eps,
            min_lns,
            ..TraclusConfig::default()
        }
    }

    fn batch_clustering(config: &TraclusConfig, trajectories: &[Trajectory<2>]) -> Clustering {
        let db =
            SegmentDatabase::from_trajectories(trajectories, &config.partition, config.distance);
        LineSegmentClustering::new(&db, config.cluster_config()).run()
    }

    #[test]
    fn empty_engine_snapshot_is_empty() {
        let engine = IncrementalClustering::<2>::new(config(2.0, 3));
        let snap = engine.snapshot();
        assert!(snap.clusters.is_empty());
        assert!(snap.labels.is_empty());
        assert!(engine.is_empty());
    }

    #[test]
    fn degenerate_trajectories_produce_no_segments() {
        let mut engine = IncrementalClustering::<2>::new(config(2.0, 3));
        // Single point: nothing to partition.
        let report = engine.insert(&Trajectory::new(
            TrajectoryId(0),
            vec![Point2::xy(1.0, 1.0)],
        ));
        assert_eq!(report, InsertReport::default());
        // All points identical: every partition is degenerate and dropped.
        let report = engine.insert(&Trajectory::new(
            TrajectoryId(1),
            vec![Point2::xy(2.0, 2.0); 5],
        ));
        assert_eq!(report.new_segments, 0);
        assert!(engine.is_empty());
        assert_eq!(engine.stats().trajectories, 2);
    }

    #[test]
    fn streaming_matches_batch_on_growing_corridor() {
        let trajectories: Vec<Trajectory<2>> =
            (0..7).map(|i| corridor(i, i as f64 * 0.4, 20)).collect();
        let cfg = config(3.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        for k in 0..trajectories.len() {
            engine.insert(&trajectories[k]);
            // The invariant is strong: after EVERY insertion the snapshot
            // equals the batch run on the prefix, label for label.
            assert_eq!(
                engine.snapshot(),
                batch_clustering(&cfg, &trajectories[..=k]),
                "diverged after trajectory {k}"
            );
        }
        assert_eq!(engine.stats().trajectories, 7);
        assert_eq!(engine.len(), engine.snapshot().labels.len());
    }

    #[test]
    fn late_arrival_flips_borders_to_core() {
        // Two trajectories are too sparse to cluster; the third makes the
        // earlier segments core retroactively.
        let trajectories: Vec<Trajectory<2>> =
            (0..3).map(|i| corridor(i, i as f64 * 0.3, 15)).collect();
        let cfg = config(2.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.insert(&trajectories[0]);
        engine.insert(&trajectories[1]);
        assert!(
            engine.snapshot().clusters.is_empty(),
            "not dense enough yet"
        );
        let report = engine.insert(&trajectories[2]);
        assert!(
            report.rebuilt || report.flipped_cores > 0,
            "third corridor must promote earlier segments"
        );
        let snap = engine.snapshot();
        assert_eq!(snap.clusters.len(), 1);
        assert_eq!(snap, batch_clustering(&cfg, &trajectories));
    }

    #[test]
    fn bridge_trajectory_merges_two_clusters() {
        // Two far-apart corridors cluster separately; a later bridge at an
        // intermediate height connects them into one component.
        let mut trajectories: Vec<Trajectory<2>> = Vec::new();
        for i in 0..4 {
            trajectories.push(corridor(i, i as f64 * 0.3, 15));
        }
        for i in 0..4 {
            trajectories.push(corridor(10 + i, 4.0 + i as f64 * 0.3, 15));
        }
        let cfg = config(2.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        assert_eq!(
            engine.snapshot().clusters.len(),
            2,
            "two separate corridors"
        );
        // The bridge sits within ε of the top of band A (y = 0.9) and the
        // bottom of band B (y = 4.0), and is itself core.
        trajectories.push(corridor(99, 2.45, 15));
        engine.insert(trajectories.last().unwrap());
        let snap = engine.snapshot();
        assert_eq!(snap.clusters.len(), 1, "bridge merges the components");
        assert_eq!(snap, batch_clustering(&cfg, &trajectories));
    }

    #[test]
    fn rebuild_thresholds_change_work_not_results() {
        let trajectories: Vec<Trajectory<2>> =
            (0..6).map(|i| corridor(i, i as f64 * 0.4, 18)).collect();
        let base = config(3.0, 3);
        let mut snapshots = Vec::new();
        for threshold in [0.0, 0.25, 1.0] {
            let cfg = TraclusConfig {
                stream: StreamConfig {
                    rebuild_threshold: threshold,
                },
                ..base
            };
            let mut engine = IncrementalClustering::<2>::new(cfg);
            engine.extend(&trajectories);
            if threshold == 0.0 {
                assert_eq!(
                    engine.stats().local_repairs,
                    0,
                    "threshold 0 must always rebuild"
                );
            }
            if threshold >= 1.0 {
                assert_eq!(
                    engine.stats().full_rebuilds,
                    0,
                    "threshold ≥ 1 must never rebuild"
                );
            }
            snapshots.push(engine.snapshot());
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
        assert_eq!(snapshots[0], batch_clustering(&base, &trajectories));
    }

    #[test]
    fn finish_attaches_representatives() {
        let trajectories: Vec<Trajectory<2>> =
            (0..5).map(|i| corridor(i, i as f64 * 0.4, 20)).collect();
        let cfg = config(3.0, 3);
        let mut engine = IncrementalClustering::<2>::new(cfg);
        engine.extend(&trajectories);
        let outcome = engine.finish();
        assert_eq!(outcome.clusters.len(), outcome.clustering.clusters.len());
        assert!(!outcome.clusters.is_empty());
        for c in &outcome.clusters {
            assert!(c.representative.points.len() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "ε must be > 0")]
    fn non_positive_eps_rejected() {
        let _ = IncrementalClustering::<2>::new(config(0.0, 3));
    }
}
