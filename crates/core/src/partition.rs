//! Trajectory partitioning via the MDL principle (Section 3).
//!
//! A trajectory is cut at *characteristic points* balancing **preciseness**
//! (the partitions stay close to the trajectory; `L(D|H)`, Formula 7)
//! against **conciseness** (few, long partitions; `L(H)`, Formula 6).
//!
//! Two algorithms:
//!
//! * [`approximate_partition`] — the O(n) greedy scan of Figure 8, which
//!   treats local MDL optima as global;
//! * [`optimal_partition`] — exact dynamic programming over all
//!   point subsets (the paper calls its cost "prohibitive" for its 2007
//!   hardware; it is O(n²) states × O(n) per edge and fine for the
//!   precision experiment of Section 3.3, which reports that ≈80 % of
//!   approximate characteristic points also appear in the exact optimum).
//!
//! The Section 4.1.3 knob — suppressing partitioning by adding a small
//! constant to `cost_nopar` so partitions come out 20–30 % longer — is
//! [`PartitionConfig::suppression`].

use traclus_geom::{
    IdentifiedSegment, Point, PreparedBase, Segment, SegmentDistance, SegmentId, Trajectory,
    TrajectoryId,
};

/// Encoding of real values as bit lengths (Section 3.2).
///
/// The paper encodes a real `x` with precision δ so that
/// `L(x) = log₂ x − log₂ δ` (it then sets δ = 1 for its data, whose
/// lengths and deviations are well above 1). We keep δ explicit:
/// `L(x) = log₂(max(x, δ) / δ)` — magnitudes are measured in units of the
/// coding precision, anything below the precision is indistinguishable
/// from zero and costs nothing. **δ must match the coordinate scale**: for
/// data whose edge lengths hover near 1 unit a δ of 1 makes "keep every
/// edge" nearly free and the partitioner degenerates to one segment per
/// edge; choose δ roughly at the measurement precision (e.g. 0.05° for
/// 6-hourly hurricane fixes, ~10 m for telemetry). See DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdlCost {
    /// The coding precision δ (> 0); values below it cost zero bits.
    pub precision: f64,
}

impl Default for MdlCost {
    fn default() -> Self {
        Self { precision: 1.0 }
    }
}

impl MdlCost {
    /// A cost model with the given precision δ.
    pub fn with_precision(precision: f64) -> Self {
        assert!(
            precision > 0.0 && precision.is_finite(),
            "MDL precision must be positive and finite"
        );
        Self { precision }
    }

    /// Code length in bits of a non-negative magnitude.
    #[inline]
    pub fn bits(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0, "code lengths are defined for magnitudes");
        let scaled = x / self.precision;
        if scaled <= 1.0 {
            0.0
        } else {
            scaled.log2()
        }
    }
}

/// Configuration of the partitioning phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Distance function used inside `L(D|H)` (perpendicular + angle only).
    pub distance: SegmentDistance,
    /// Cost encoding.
    pub cost: MdlCost,
    /// Bits added to `cost_nopar` before the Figure 8 comparison,
    /// suppressing partitioning and lengthening partitions (Section 4.1.3:
    /// "increasing the length of trajectory partitions by 20∼30 % generally
    /// improves the clustering quality"). 0 reproduces Figure 8 verbatim.
    pub suppression: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            distance: SegmentDistance::default(),
            cost: MdlCost::default(),
            suppression: 0.0,
        }
    }
}

impl PartitionConfig {
    /// `MDL_par(p_i, p_j)`: cost when `p_i, p_j` are the only characteristic
    /// points of the stretch — `L(H) = log₂ len(p_i p_j)` plus
    /// `L(D|H) = Σ_k log₂ d⊥ + log₂ dθ` against every original edge.
    ///
    /// The hypothesis segment always plays the base role, so its projection
    /// setup is prepared once ([`PreparedBase`]) and the batched MDL kernel
    /// evaluates every edge against it — bit-identical to per-edge
    /// `mdl_components`, minus the repeated setup and the discarded
    /// parallel component.
    pub fn mdl_par<const D: usize>(&self, points: &[Point<D>], i: usize, j: usize) -> f64 {
        debug_assert!(i < j && j < points.len());
        let hypothesis = Segment::new(points[i], points[j]);
        let base = PreparedBase::new(&hypothesis);
        let mut cost = self.cost.bits(hypothesis.length());
        for k in i..j {
            let edge = Segment::new(points[k], points[k + 1]);
            let (perp, angle) = self.distance.mdl_components_prepared(&base, &edge);
            cost += self.cost.bits(perp) + self.cost.bits(angle);
        }
        cost
    }

    /// `MDL_nopar(p_i, p_j)`: cost of keeping the original trajectory —
    /// `L(H)` is the summed edge code lengths and `L(D|H)` is zero.
    pub fn mdl_nopar<const D: usize>(&self, points: &[Point<D>], i: usize, j: usize) -> f64 {
        debug_assert!(i < j && j < points.len());
        (i..j)
            .map(|k| self.cost.bits(points[k].distance(&points[k + 1])))
            .sum()
    }
}

/// Result of partitioning one trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// Indices of the characteristic points into the original point
    /// sequence; always starts at 0 and ends at `len − 1`, strictly
    /// increasing (Figure 8 lines 1 and 12).
    pub characteristic_points: Vec<usize>,
}

impl Partitioning {
    /// Number of trajectory partitions (`parᵢ − 1`).
    pub fn partition_count(&self) -> usize {
        self.characteristic_points.len().saturating_sub(1)
    }

    /// Materialises the partitions as segments over the original points.
    pub fn segments<const D: usize>(&self, points: &[Point<D>]) -> Vec<Segment<D>> {
        self.characteristic_points
            .windows(2)
            .map(|w| Segment::new(points[w[0]], points[w[1]]))
            .collect()
    }

    /// Mean partition length (used by the Section 4.1.3 experiment).
    pub fn mean_partition_length<const D: usize>(&self, points: &[Point<D>]) -> f64 {
        let segs = self.segments(points);
        if segs.is_empty() {
            0.0
        } else {
            segs.iter().map(|s| s.length()).sum::<f64>() / segs.len() as f64
        }
    }
}

/// The O(n) approximate algorithm of Figure 8.
///
/// Scans forward, growing a candidate partition while `MDL_par ≤
/// MDL_nopar (+ suppression)`; on the first violation the *previous* point
/// becomes a characteristic point and the scan restarts there.
///
/// Trajectories with fewer than two points yield the trivial partitioning
/// (every available point is characteristic).
///
/// ```
/// use traclus_core::partition::{approximate_partition, PartitionConfig};
/// use traclus_geom::Point2;
///
/// // A long straight run, a sharp corner, another long run: the MDL
/// // balance keeps the runs whole and cuts at (or near) the corner.
/// let points: Vec<Point2> = (0..10)
///     .map(|k| Point2::xy(k as f64 * 10.0, 0.0))
///     .chain((1..10).map(|k| Point2::xy(90.0, k as f64 * 10.0)))
///     .collect();
/// let partitioning = approximate_partition(&PartitionConfig::default(), &points);
///
/// // Far fewer partitions than edges (conciseness) …
/// assert!(partitioning.partition_count() < points.len() - 1);
/// // … and the endpoints are always characteristic (Figure 8 lines 1, 12).
/// assert_eq!(partitioning.characteristic_points.first(), Some(&0));
/// assert_eq!(partitioning.characteristic_points.last(), Some(&(points.len() - 1)));
/// ```
pub fn approximate_partition<const D: usize>(
    config: &PartitionConfig,
    points: &[Point<D>],
) -> Partitioning {
    let n = points.len();
    if n <= 2 {
        return Partitioning {
            characteristic_points: (0..n).collect(),
        };
    }
    let mut cps = vec![0usize]; // line 1: the starting point
    let mut start_index = 0usize; // line 2 (0-based)
    let mut length = 1usize;
    while start_index + length < n {
        // line 3
        let curr_index = start_index + length; // line 4
        let cost_par = config.mdl_par(points, start_index, curr_index); // line 5
        let cost_nopar = config.mdl_nopar(points, start_index, curr_index) + config.suppression; // line 6
        if cost_par > cost_nopar {
            // lines 7–9: partition at the previous point.
            cps.push(curr_index - 1);
            start_index = curr_index - 1;
            length = 1;
        } else {
            length += 1; // line 11
        }
    }
    if *cps.last().expect("non-empty") != n - 1 {
        cps.push(n - 1); // line 12: the ending point
    }
    // Degenerate guard: restarting at curr−1 can re-push the same index when
    // the trajectory contains repeated points; deduplicate while keeping
    // order strictly increasing.
    cps.dedup();
    Partitioning {
        characteristic_points: cps,
    }
}

/// Exact MDL-optimal partitioning by dynamic programming.
///
/// `best[j] = min_{i<j} best[i] + MDL_par(i, j)`; the optimum over *all*
/// subsets of interior points falls out because the total MDL cost is
/// additive over chosen partitions. O(n²) transitions, each O(span).
///
/// `max_span` bounds the partition length considered (`None` = unbounded);
/// the unbounded version is cubic and meant for the Section 3.3 precision
/// experiment on moderate trajectories.
pub fn optimal_partition<const D: usize>(
    config: &PartitionConfig,
    points: &[Point<D>],
    max_span: Option<usize>,
) -> Partitioning {
    let n = points.len();
    if n <= 2 {
        return Partitioning {
            characteristic_points: (0..n).collect(),
        };
    }
    let mut best = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    best[0] = 0.0;
    for j in 1..n {
        let lo = match max_span {
            Some(span) => j.saturating_sub(span),
            None => 0,
        };
        for i in lo..j {
            if best[i].is_finite() {
                let cost = best[i] + config.mdl_par(points, i, j);
                if cost < best[j] {
                    best[j] = cost;
                    parent[j] = i;
                }
            }
        }
    }
    let mut cps = vec![n - 1];
    let mut cur = n - 1;
    while cur != 0 {
        cur = parent[cur];
        cps.push(cur);
    }
    cps.reverse();
    Partitioning {
        characteristic_points: cps,
    }
}

/// Precision of the approximate solution against the exact one
/// (Section 3.3: "the precision is about 80 % on average") — the fraction
/// of approximate characteristic points that also appear in the exact set.
/// Endpoints are excluded: both algorithms always select them, so counting
/// them would inflate the figure.
pub fn partition_precision(approximate: &Partitioning, exact: &Partitioning) -> Option<f64> {
    let interior = |p: &Partitioning| -> Vec<usize> {
        p.characteristic_points[1..p.characteristic_points.len().saturating_sub(1)].to_vec()
    };
    let approx_interior = interior(approximate);
    if approx_interior.is_empty() {
        return None;
    }
    let exact_interior = interior(exact);
    let hits = approx_interior
        .iter()
        .filter(|i| exact_interior.contains(i))
        .count();
    Some(hits as f64 / approx_interior.len() as f64)
}

/// Partitions every trajectory and accumulates the resulting identified
/// segments into one database-ready vector (Figure 4, lines 1–3).
///
/// Zero-length partitions (from consecutive duplicate points) are skipped:
/// they carry no direction and Section 4.1.3 shows degenerate segments only
/// harm clustering.
pub fn partition_trajectories<const D: usize>(
    config: &PartitionConfig,
    trajectories: &[Trajectory<D>],
) -> Vec<IdentifiedSegment<D>> {
    let mut out = Vec::new();
    for tr in trajectories {
        let first_id = out.len() as u32;
        out.extend(partition_trajectory_from(config, tr, first_id));
    }
    out
}

/// Partitions **one** trajectory, identifying its partitions with dense
/// segment ids starting at `first_id` — the per-trajectory unit of work the
/// streaming engine ([`crate::stream`]) performs on every ingested
/// trajectory. [`partition_trajectories`] is exactly this, folded over a
/// slice with `first_id` carried along, so a trajectory stream partitioned
/// one element at a time yields the identical segment database.
///
/// Degenerate (zero-length) partitions are dropped, as in the batch path:
/// they carry no direction and the composite distance is undefined on them.
///
/// ```
/// use traclus_core::partition::{partition_trajectory_from, PartitionConfig};
/// use traclus_geom::{Point2, Trajectory, TrajectoryId};
///
/// let tr = Trajectory::new(
///     TrajectoryId(7),
///     vec![
///         Point2::xy(0.0, 0.0),
///         Point2::xy(40.0, 0.0),  // long straight run …
///         Point2::xy(40.0, 40.0), // … then a sharp corner
///     ],
/// );
/// let segments = partition_trajectory_from(&PartitionConfig::default(), &tr, 10);
/// assert!(!segments.is_empty());
/// assert_eq!(segments[0].id.0, 10, "ids continue the caller's sequence");
/// assert!(segments.iter().all(|s| s.trajectory == TrajectoryId(7)));
/// ```
pub fn partition_trajectory_from<const D: usize>(
    config: &PartitionConfig,
    trajectory: &Trajectory<D>,
    first_id: u32,
) -> Vec<IdentifiedSegment<D>> {
    let partitioning = approximate_partition(config, &trajectory.points);
    let mut out = Vec::new();
    let mut next_id = first_id;
    for seg in partitioning.segments(&trajectory.points) {
        if seg.is_degenerate() {
            continue;
        }
        out.push(IdentifiedSegment {
            id: SegmentId(next_id),
            trajectory: trajectory.id,
            segment: seg,
            weight: trajectory.weight,
        });
        next_id += 1;
    }
    out
}

/// Convenience: partitions a single raw point sequence (no ids) — handy in
/// examples and tests.
pub fn partition_points<const D: usize>(
    config: &PartitionConfig,
    points: &[Point<D>],
) -> Vec<Segment<D>> {
    approximate_partition(config, points).segments(points)
}

#[allow(dead_code)]
fn unused_trajectory_id(_: TrajectoryId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::Point2;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::xy(x, y)).collect()
    }

    #[test]
    fn mdl_cost_clamps_small_values() {
        let cost = MdlCost::default();
        assert_eq!(cost.bits(0.0), 0.0);
        assert_eq!(cost.bits(0.5), 0.0);
        assert_eq!(cost.bits(1.0), 0.0);
        assert!((cost.bits(8.0) - 3.0).abs() < 1e-12);
        let fine = MdlCost::with_precision(0.25);
        assert!((fine.bits(8.0) - 5.0).abs() < 1e-12, "log2(32)");
        assert_eq!(fine.bits(0.2), 0.0, "below the precision: free");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_precision_rejected() {
        let _ = MdlCost::with_precision(0.0);
    }

    #[test]
    fn finer_precision_merges_smooth_small_scale_trajectories() {
        // Edge lengths ≈ 1: with δ = 1 keeping the original edges is nearly
        // free and the partitioner splits everywhere; with δ matched to the
        // data scale it merges the smooth run.
        let points: Vec<Point2> = (0..40)
            .map(|i| {
                let x = i as f64 * 1.1;
                Point2::xy(x, 0.04 * (x * 0.5).sin())
            })
            .collect();
        let coarse = approximate_partition(&PartitionConfig::default(), &points);
        let fine = approximate_partition(
            &PartitionConfig {
                cost: MdlCost::with_precision(0.05),
                ..PartitionConfig::default()
            },
            &points,
        );
        assert!(
            fine.partition_count() < coarse.partition_count().max(2),
            "δ-matched encoding must merge: fine {} vs coarse {}",
            fine.partition_count(),
            coarse.partition_count()
        );
        assert!(fine.partition_count() <= 4, "smooth run stays concise");
    }

    #[test]
    fn straight_line_is_never_partitioned() {
        let config = PartitionConfig::default();
        let points = pts(&(0..30).map(|i| (i as f64 * 5.0, 0.0)).collect::<Vec<_>>());
        let p = approximate_partition(&config, &points);
        assert_eq!(
            p.characteristic_points,
            vec![0, 29],
            "collinear points need only the endpoints"
        );
    }

    #[test]
    fn right_angle_turn_is_partitioned_at_the_corner() {
        let config = PartitionConfig::default();
        // 10 steps east then 10 steps north, step length 10.
        let mut coords = Vec::new();
        for i in 0..=10 {
            coords.push((i as f64 * 10.0, 0.0));
        }
        for j in 1..=10 {
            coords.push((100.0, j as f64 * 10.0));
        }
        let points = pts(&coords);
        // The greedy Figure 8 scan detects the turn within one step of the
        // corner (it only partitions once MDL_par exceeds MDL_nopar, which
        // can lag by one point — the Figure 9 approximation).
        let p = approximate_partition(&config, &points);
        assert!(
            p.characteristic_points
                .iter()
                .any(|&c| (9..=11).contains(&c)),
            "a characteristic point near the corner (index 10), got {:?}",
            p.characteristic_points
        );
        assert!(p.partition_count() <= 4, "stays concise");
        // The exact optimiser nails the corner precisely.
        let exact = optimal_partition(&config, &points, None);
        assert!(
            exact.characteristic_points.contains(&10),
            "exact optimum partitions at the corner, got {:?}",
            exact.characteristic_points
        );
    }

    #[test]
    fn endpoints_always_present() {
        let config = PartitionConfig::default();
        let points = pts(&[
            (0.0, 0.0),
            (5.0, 1.0),
            (9.0, -1.0),
            (14.0, 0.5),
            (20.0, 0.0),
        ]);
        let p = approximate_partition(&config, &points);
        assert_eq!(*p.characteristic_points.first().unwrap(), 0);
        assert_eq!(*p.characteristic_points.last().unwrap(), 4);
        assert!(p.characteristic_points.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tiny_trajectories() {
        let config = PartitionConfig::default();
        assert_eq!(
            approximate_partition(&config, &pts(&[])).characteristic_points,
            Vec::<usize>::new()
        );
        assert_eq!(
            approximate_partition(&config, &pts(&[(1.0, 1.0)])).characteristic_points,
            vec![0]
        );
        assert_eq!(
            approximate_partition(&config, &pts(&[(0.0, 0.0), (1.0, 0.0)])).characteristic_points,
            vec![0, 1]
        );
    }

    #[test]
    fn duplicate_points_do_not_break_partitioning() {
        let config = PartitionConfig::default();
        let points = pts(&[(0.0, 0.0), (0.0, 0.0), (5.0, 0.0), (5.0, 0.0), (5.0, 5.0)]);
        let p = approximate_partition(&config, &points);
        assert!(p.characteristic_points.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*p.characteristic_points.last().unwrap(), 4);
    }

    #[test]
    fn suppression_lengthens_partitions() {
        // A noisy zig-zag: with suppression the partitioner must emit
        // fewer (hence longer) partitions — the Section 4.1.3 claim.
        let mut coords = Vec::new();
        for i in 0..60 {
            let x = i as f64 * 4.0;
            let y = if i % 2 == 0 { 0.0 } else { 3.0 };
            coords.push((x, y));
        }
        let points = pts(&coords);
        let base = approximate_partition(&PartitionConfig::default(), &points);
        let suppressed = approximate_partition(
            &PartitionConfig {
                suppression: 4.0,
                ..PartitionConfig::default()
            },
            &points,
        );
        assert!(
            suppressed.partition_count() <= base.partition_count(),
            "suppression must not create more partitions: {} vs {}",
            suppressed.partition_count(),
            base.partition_count()
        );
        assert!(
            suppressed.mean_partition_length(&points) >= base.mean_partition_length(&points),
            "suppression must not shorten partitions"
        );
    }

    #[test]
    fn optimal_cost_never_worse_than_approximate() {
        let config = PartitionConfig::default();
        let points = pts(&[
            (0.0, 0.0),
            (10.0, 1.0),
            (20.0, -1.5),
            (30.0, 8.0),
            (33.0, 20.0),
            (31.0, 33.0),
            (20.0, 38.0),
            (8.0, 39.0),
        ]);
        let approx = approximate_partition(&config, &points);
        let exact = optimal_partition(&config, &points, None);
        let total = |p: &Partitioning| -> f64 {
            p.characteristic_points
                .windows(2)
                .map(|w| config.mdl_par(&points, w[0], w[1]))
                .sum()
        };
        assert!(
            total(&exact) <= total(&approx) + 1e-9,
            "DP optimum {} must not exceed greedy {}",
            total(&exact),
            total(&approx)
        );
    }

    #[test]
    fn optimal_partition_of_straight_line_is_single_segment() {
        let config = PartitionConfig::default();
        let points = pts(&(0..12).map(|i| (i as f64 * 7.0, 0.0)).collect::<Vec<_>>());
        let exact = optimal_partition(&config, &points, None);
        assert_eq!(exact.characteristic_points, vec![0, 11]);
    }

    #[test]
    fn max_span_bounds_partition_length() {
        let config = PartitionConfig::default();
        let points = pts(&(0..20).map(|i| (i as f64 * 3.0, 0.0)).collect::<Vec<_>>());
        let bounded = optimal_partition(&config, &points, Some(5));
        assert!(bounded
            .characteristic_points
            .windows(2)
            .all(|w| w[1] - w[0] <= 5));
    }

    #[test]
    fn precision_of_figure_9_style_failure() {
        // The approximate algorithm may stop early (Figure 9) but its
        // characteristic points largely coincide with the exact optimum.
        let config = PartitionConfig::default();
        let points = pts(&[(0.0, 0.0), (4.0, 6.0), (9.0, 7.5), (14.0, 6.0), (18.0, 0.0)]);
        let approx = approximate_partition(&config, &points);
        let exact = optimal_partition(&config, &points, None);
        if let Some(p) = partition_precision(&approx, &exact) {
            assert!((0.0..=1.0).contains(&p));
        }
        // Identical partitionings give precision 1.
        assert_eq!(partition_precision(&exact, &exact), {
            let interior = exact.characteristic_points.len() - 2;
            if interior == 0 {
                None
            } else {
                Some(1.0)
            }
        });
    }

    #[test]
    fn partition_trajectories_assigns_sequential_ids_and_provenance() {
        let config = PartitionConfig::default();
        let t1 = Trajectory::new(
            TrajectoryId(0),
            pts(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]),
        );
        let t2 = Trajectory::new(TrajectoryId(1), pts(&[(0.0, 5.0), (10.0, 5.0)]));
        let segs = partition_trajectories(&config, &[t1, t2]);
        assert!(!segs.is_empty());
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i, "ids are dense and sequential");
            assert!(!s.segment.is_degenerate());
        }
        assert!(segs.iter().any(|s| s.trajectory == TrajectoryId(0)));
        assert!(segs.iter().any(|s| s.trajectory == TrajectoryId(1)));
    }

    #[test]
    fn partition_trajectories_skips_degenerate_partitions() {
        let config = PartitionConfig::default();
        let t = Trajectory::new(TrajectoryId(0), pts(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]));
        let segs = partition_trajectories(&config, &[t]);
        assert!(segs.is_empty(), "all-duplicate trajectory yields nothing");
    }

    #[test]
    fn appendix_c_shift_invariance_of_partitioning() {
        // TR1 vs TR3 = TR1 + (10000, 10000): because L(H) uses *lengths*
        // not endpoint coordinates, the characteristic points must match.
        let config = PartitionConfig::default();
        let tr1 = pts(&[(100.0, 100.0), (200.0, 200.0), (300.0, 100.0)]);
        let tr3 = pts(&[(10100.0, 10100.0), (10200.0, 10200.0), (10300.0, 10100.0)]);
        let p1 = approximate_partition(&config, &tr1);
        let p3 = approximate_partition(&config, &tr3);
        assert_eq!(p1.characteristic_points, p3.characteristic_points);
        // And the exact optimiser agrees with itself under the shift too.
        let e1 = optimal_partition(&config, &tr1, None);
        let e3 = optimal_partition(&config, &tr3, None);
        assert_eq!(e1.characteristic_points, e3.characteristic_points);
    }
}
