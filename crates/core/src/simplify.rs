//! Douglas–Peucker trajectory simplification — the classic geometric
//! baseline for the MDL partitioner.
//!
//! The paper argues (Section 3) that characteristic points should balance
//! preciseness and conciseness *automatically* via MDL, with no tolerance
//! parameter. Douglas–Peucker is the standard alternative: keep the point
//! farthest from the current chord whenever that distance exceeds a fixed
//! tolerance. This module implements it so the `ablation` experiments and
//! tests can compare the two on equal footing:
//!
//! * DP needs its tolerance hand-tuned per dataset; MDL adapts via δ;
//! * DP considers perpendicular deviation only; the MDL cost also charges
//!   angular deviation (`dθ` in Formula 7), so it cuts at direction changes
//!   even when the offset is small — exactly what sub-trajectory clustering
//!   needs (a hairpin with small offset is a huge behavioural change).

use traclus_geom::{Point, Segment};

use crate::partition::Partitioning;

/// Simplifies a polyline with Douglas–Peucker at the given tolerance,
/// returning the kept indices in the same format as the MDL partitioners
/// (always includes both endpoints; strictly increasing).
pub fn douglas_peucker<const D: usize>(points: &[Point<D>], tolerance: f64) -> Partitioning {
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "tolerance must be non-negative"
    );
    let n = points.len();
    if n <= 2 {
        return Partitioning {
            characteristic_points: (0..n).collect(),
        };
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    // Explicit stack instead of recursion: telemetry trajectories run to
    // tens of thousands of points and could overflow the call stack.
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let chord = Segment::new(points[lo], points[hi]);
        let mut worst = lo;
        let mut worst_dist = -1.0;
        for (offset, p) in points[lo + 1..hi].iter().enumerate() {
            let d = if chord.is_degenerate() {
                p.distance(&points[lo])
            } else {
                chord.segment_distance(p)
            };
            if d > worst_dist {
                worst_dist = d;
                worst = lo + 1 + offset;
            }
        }
        if worst_dist > tolerance {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    Partitioning {
        characteristic_points: (0..n).filter(|&i| keep[i]).collect(),
    }
}

/// Picks the Douglas–Peucker tolerance that yields (approximately) the same
/// number of characteristic points as a reference partitioning — the fair
/// way to compare DP against MDL (equal conciseness, compare behaviour).
/// Binary-searches the tolerance; returns `(tolerance, partitioning)`.
pub fn douglas_peucker_matching_count<const D: usize>(
    points: &[Point<D>],
    target_count: usize,
) -> (f64, Partitioning) {
    let diameter = max_pairwise_extent(points);
    let mut lo = 0.0f64;
    let mut hi = diameter.max(1e-9);
    let mut best = douglas_peucker(points, hi);
    let mut best_tol = hi;
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        let candidate = douglas_peucker(points, mid);
        let count = candidate.characteristic_points.len();
        let best_count = best.characteristic_points.len();
        if count.abs_diff(target_count) <= best_count.abs_diff(target_count) {
            best = candidate.clone();
            best_tol = mid;
        }
        if count > target_count {
            lo = mid; // too precise: raise the tolerance
        } else {
            hi = mid;
        }
    }
    (best_tol, best)
}

fn max_pairwise_extent<const D: usize>(points: &[Point<D>]) -> f64 {
    let bbox = traclus_geom::Aabb::from_points(points);
    if bbox.is_empty() {
        return 0.0;
    }
    (0..D)
        .map(|k| bbox.max[k] - bbox.min[k])
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{approximate_partition, PartitionConfig};
    use traclus_geom::Point2;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::xy(x, y)).collect()
    }

    #[test]
    fn straight_line_keeps_only_endpoints() {
        let points = pts(&(0..20).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let p = douglas_peucker(&points, 0.5);
        assert_eq!(p.characteristic_points, vec![0, 19]);
    }

    #[test]
    fn keeps_the_farthest_deviation() {
        let points = pts(&[(0.0, 0.0), (5.0, 4.0), (10.0, 0.0)]);
        let p = douglas_peucker(&points, 1.0);
        assert_eq!(p.characteristic_points, vec![0, 1, 2]);
        let loose = douglas_peucker(&points, 10.0);
        assert_eq!(loose.characteristic_points, vec![0, 2]);
    }

    #[test]
    fn zero_tolerance_keeps_everything_off_chord() {
        let points = pts(&[(0.0, 0.0), (1.0, 0.1), (2.0, -0.1), (3.0, 0.0)]);
        let p = douglas_peucker(&points, 0.0);
        assert_eq!(p.characteristic_points, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(
            douglas_peucker(&pts(&[]), 1.0).characteristic_points,
            Vec::<usize>::new()
        );
        assert_eq!(
            douglas_peucker(&pts(&[(1.0, 1.0)]), 1.0).characteristic_points,
            vec![0]
        );
        assert_eq!(
            douglas_peucker(&pts(&[(0.0, 0.0), (1.0, 1.0)]), 1.0).characteristic_points,
            vec![0, 1]
        );
    }

    #[test]
    fn duplicate_points_handled() {
        let points = pts(&[(0.0, 0.0), (0.0, 0.0), (5.0, 5.0), (0.0, 0.0)]);
        let p = douglas_peucker(&points, 0.1);
        assert_eq!(*p.characteristic_points.first().unwrap(), 0);
        assert_eq!(*p.characteristic_points.last().unwrap(), 3);
        assert!(p.characteristic_points.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_matching_hits_the_target() {
        // A wavy path with many candidate corners.
        let points: Vec<Point2> = (0..200)
            .map(|i| {
                let x = i as f64 * 2.0;
                Point2::xy(x, 30.0 * (x * 0.05).sin())
            })
            .collect();
        let (_, matched) = douglas_peucker_matching_count(&points, 12);
        let got = matched.characteristic_points.len();
        assert!(
            (9..=15).contains(&got),
            "binary search should land near 12, got {got}"
        );
    }

    #[test]
    fn mdl_and_dp_agree_on_noisy_corner_at_matched_budget() {
        // A noisy straight run followed by a sharp corner: both methods
        // should merge the noise away and keep a characteristic point near
        // the corner. The comparison is made at equal conciseness (DP's
        // tolerance binary-searched to MDL's point count), which is how the
        // `ablation` experiment reports them side by side.
        let mut coords: Vec<(f64, f64)> = (0..25)
            .map(|i| (i as f64 * 10.0, if i % 2 == 0 { 0.0 } else { 0.8 }))
            .collect();
        coords.extend((1..25).map(|i| (240.0, i as f64 * 10.0)));
        let points = pts(&coords);
        let mdl = approximate_partition(&PartitionConfig::default(), &points);
        assert!(
            mdl.partition_count() <= 6,
            "MDL merges the zig-zag noise: {:?}",
            mdl.characteristic_points
        );
        assert!(
            mdl.characteristic_points
                .iter()
                .any(|&c| (23..=26).contains(&c)),
            "MDL keeps the corner: {:?}",
            mdl.characteristic_points
        );
        let (tolerance, dp) =
            douglas_peucker_matching_count(&points, mdl.characteristic_points.len());
        assert!(
            tolerance > 0.8,
            "DP's matched tolerance exceeds the noise band"
        );
        assert!(
            dp.characteristic_points
                .iter()
                .any(|&c| (23..=26).contains(&c)),
            "DP also keeps the corner at the matched budget: {:?}",
            dp.characteristic_points
        );
        // The key operational difference: DP needed the corpus-specific
        // tolerance handed to it; MDL derived the same structure from its
        // generic cost (the point the paper makes in Section 3.1–3.2).
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        let _ = douglas_peucker(&pts(&[(0.0, 0.0), (1.0, 1.0)]), -1.0);
    }
}
