//! Density-based line-segment clustering (Section 4.2, Figure 12).
//!
//! A faithful adaptation of DBSCAN to line segments under the composite
//! distance: ε-neighborhoods (Definition 4), core segments (Definition 5),
//! cluster expansion through direct density-reachability (Definitions 6–9),
//! and the TRACLUS-specific third step — discarding clusters whose
//! *trajectory cardinality* `|PTR(C)|` (Definition 10) is below a threshold,
//! because a cluster drawn from too few distinct trajectories "does not
//! explain the behavior of a sufficient number of trajectories".
//!
//! The weighted-trajectory extension (end of Section 4.2) replaces the
//! neighborhood count with the sum of member weights.

use std::collections::VecDeque;

use traclus_geom::TrajectoryId;

use crate::params::Parallelism;
use crate::segment_db::{IndexKind, NeighborIndex, PruneStats, SegmentDatabase};

/// Identifier of a cluster in a [`Clustering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Per-segment classification after clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentLabel {
    /// Not yet visited (only observable mid-algorithm).
    Unclassified,
    /// Classified as noise (Figure 12 line 12), or member of a cluster that
    /// the trajectory-cardinality filter later removed.
    Noise,
    /// Member of the given cluster.
    Cluster(ClusterId),
}

/// Parameters of the grouping phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// The neighborhood radius ε.
    pub eps: f64,
    /// `MinLns`: minimum (weighted) neighborhood cardinality of a core
    /// segment.
    pub min_lns: f64,
    /// Threshold on `|PTR(C)|` below which a cluster is removed
    /// (Figure 12 line 15 notes "a threshold other than MinLns can be
    /// used"; `None` uses `MinLns`).
    pub min_trajectories: Option<usize>,
    /// Use weighted neighborhood cardinalities (Section 4.2 extension).
    pub weighted: bool,
    /// Acceleration structure for ε-neighborhood queries.
    pub index: IndexKind,
    /// Worker threads for [`LineSegmentClustering::run_configured`]: the
    /// sharded parallel path when it resolves to ≥ 2, the sequential
    /// Figure 12 loop otherwise. Either way the resulting [`Clustering`]
    /// is identical.
    pub parallelism: Parallelism,
    /// Filter-and-refine pruning of ε-neighborhood candidates through the
    /// admissible lower bounds of `traclus_geom::lower_bound` (default
    /// on). The clustering is bit-identical either way — this is a
    /// performance/diagnostics knob, not a semantics switch.
    pub pruning: bool,
}

impl ClusterConfig {
    /// Plain configuration with the mandatory parameters.
    pub fn new(eps: f64, min_lns: usize) -> Self {
        Self {
            eps,
            min_lns: min_lns as f64,
            min_trajectories: None,
            weighted: false,
            index: IndexKind::default(),
            parallelism: Parallelism::default(),
            pruning: true,
        }
    }

    pub(crate) fn trajectory_threshold(&self) -> usize {
        self.min_trajectories
            .unwrap_or_else(|| self.min_lns.ceil() as usize)
    }
}

/// A surviving cluster: its members and participating trajectories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// The cluster id (dense, renumbered after filtering).
    pub id: ClusterId,
    /// Member segment ids, ascending.
    pub members: Vec<u32>,
    /// The distinct trajectories contributing members (`PTR(C)`),
    /// ascending.
    pub trajectories: Vec<TrajectoryId>,
}

impl Cluster {
    /// `|PTR(C)|` of Definition 10.
    pub fn trajectory_cardinality(&self) -> usize {
        self.trajectories.len()
    }
}

/// Result of the grouping phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Final label of every segment (dense ids).
    pub labels: Vec<SegmentLabel>,
    /// Surviving clusters, dense ids matching `labels`.
    pub clusters: Vec<Cluster>,
    /// Clusters removed by the trajectory-cardinality filter (kept for
    /// diagnostics/experiments; their members are labelled noise).
    pub filtered_out: usize,
}

impl Clustering {
    /// Segment ids labelled noise.
    pub fn noise(&self) -> Vec<u32> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, SegmentLabel::Noise))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Number of segments labelled noise. Counts labels in place, so tests,
    /// examples, and quality statistics no longer materialise the
    /// [`Self::noise`] id vector just to `.len()` it.
    pub fn noise_count(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| matches!(l, SegmentLabel::Noise))
            .count()
    }

    /// Fraction of segments labelled noise. Counts labels in place — this
    /// runs inside the parameter-sweep experiment loops, where building the
    /// full [`Self::noise`] id vector per configuration was pure waste.
    pub fn noise_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.noise_count() as f64 / self.labels.len() as f64
        }
    }

    /// Member count of every cluster, in cluster-id order.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(|c| c.members.len()).collect()
    }

    /// Mean cluster size in segments (the Section 5.4 statistic).
    pub fn mean_cluster_size(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            self.clusters.iter().map(|c| c.members.len()).sum::<usize>() as f64
                / self.clusters.len() as f64
        }
    }
}

/// Observability counters of one clustering run — everything the run did
/// that a [`Clustering`] (which is compared for equivalence and must stay
/// independent of the execution strategy) cannot carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Filter-and-refine tallies of the ε-neighborhood queries.
    pub prune: PruneStats,
}

/// The Figure 12 algorithm, generic over dimension.
pub struct LineSegmentClustering<'db, const D: usize> {
    db: &'db SegmentDatabase<D>,
    config: ClusterConfig,
}

impl<'db, const D: usize> LineSegmentClustering<'db, D> {
    /// Binds the algorithm to a database and parameters.
    pub fn new(db: &'db SegmentDatabase<D>, config: ClusterConfig) -> Self {
        assert!(config.eps >= 0.0 && config.eps.is_finite(), "ε must be ≥ 0");
        assert!(config.min_lns >= 1.0, "MinLns must be ≥ 1");
        Self { db, config }
    }

    /// Runs the three steps of Figure 12 and returns the clustering.
    ///
    /// ```
    /// use traclus_core::{ClusterConfig, LineSegmentClustering, SegmentDatabase};
    /// use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};
    ///
    /// // Five parallel segments from distinct trajectories, plus one far
    /// // outlier.
    /// let mut segments: Vec<_> = (0..5)
    ///     .map(|i| {
    ///         IdentifiedSegment::new(
    ///             SegmentId(i),
    ///             TrajectoryId(i),
    ///             Segment2::xy(0.0, 0.4 * i as f64, 10.0, 0.4 * i as f64),
    ///         )
    ///     })
    ///     .collect();
    /// segments.push(IdentifiedSegment::new(
    ///     SegmentId(5),
    ///     TrajectoryId(99),
    ///     Segment2::xy(500.0, 500.0, 510.0, 500.0),
    /// ));
    /// let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
    ///
    /// let clustering = LineSegmentClustering::new(&db, ClusterConfig::new(1.5, 3)).run();
    /// assert_eq!(clustering.clusters.len(), 1, "one dense bundle");
    /// assert_eq!(clustering.clusters[0].members, vec![0, 1, 2, 3, 4]);
    /// assert_eq!(clustering.noise(), vec![5], "the outlier is noise");
    /// ```
    pub fn run(&self) -> Clustering {
        self.run_with_stats().0
    }

    /// [`Self::run`] plus the run's [`ClusterStats`] (filter-and-refine
    /// prune counters). The stats ride outside the [`Clustering`] so
    /// equivalence comparisons between execution strategies stay exact.
    pub fn run_with_stats(&self) -> (Clustering, ClusterStats) {
        let n = self.db.len();
        let mut index = self.db.build_index(self.config.index, self.config.eps);
        index.set_pruning(self.config.pruning);
        // Raw ids assigned during expansion; filtered/renumbered in step 3.
        let mut raw: Vec<Option<u32>> = vec![None; n];
        let mut visited_noise: Vec<bool> = vec![false; n];
        let mut classified: Vec<bool> = vec![false; n];
        let mut cluster_id: u32 = 0; // line 1
        let mut neighborhood = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();

        // Step 1 (lines 3–12): seed clusters from unclassified segments in
        // id order (determinism).
        for l in 0..n as u32 {
            if classified[l as usize] {
                continue;
            }
            self.db
                .neighborhood_into(&index, l, self.config.eps, &mut neighborhood); // line 5
            let cardinality = self
                .db
                .neighborhood_cardinality(&neighborhood, self.config.weighted);
            if cardinality >= self.config.min_lns {
                // lines 7–8: claim the neighborhood for the new cluster and
                // queue the unclassified part (minus L itself) for
                // expansion. Only unclassified or noise segments are
                // claimed: a border segment already classified into an
                // earlier cluster belongs to that cluster (DBSCAN
                // first-come semantics) — unconditionally re-assigning it
                // here would silently steal it and desynchronise the
                // earlier cluster's members from its labels. Noise
                // segments are claimed as border members but not queued
                // (they were already visited and found non-core), matching
                // `expand_cluster`.
                queue.clear();
                for &x in &neighborhood {
                    let xi = x as usize;
                    let was_unclassified = !classified[xi];
                    if was_unclassified || visited_noise[xi] {
                        raw[xi] = Some(cluster_id);
                        classified[xi] = true;
                        visited_noise[xi] = false;
                        if was_unclassified && x != l {
                            queue.push_back(x);
                        }
                    }
                }
                // Step 2 (lines 17–28).
                self.expand_cluster(
                    &index,
                    &mut queue,
                    cluster_id,
                    &mut raw,
                    &mut classified,
                    &mut visited_noise,
                    &mut neighborhood,
                );
                cluster_id += 1; // line 10
            } else {
                visited_noise[l as usize] = true; // line 12
                classified[l as usize] = true;
            }
        }

        // Step 3 (lines 13–16), shared with the parallel path.
        let clustering = finalize_raw(
            self.db,
            &raw,
            cluster_id,
            self.config.trajectory_threshold(),
        );
        let stats = ClusterStats {
            prune: index.prune_stats(),
        };
        (clustering, stats)
    }

    /// Runs the grouping phase over `threads` worker threads and returns a
    /// [`Clustering`] **identical** to [`Self::run`] — the sharded
    /// split/merge design and the equivalence argument live in
    /// [`crate::shard`]. `threads ≤ 1` takes the sequential path directly.
    ///
    /// ```
    /// use traclus_core::{ClusterConfig, LineSegmentClustering, SegmentDatabase};
    /// use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId, TrajectoryId};
    ///
    /// let segments: Vec<_> = (0..24)
    ///     .map(|i| {
    ///         // Three separated bundles of eight segments each.
    ///         let (bundle, lane) = (i / 8, i % 8);
    ///         IdentifiedSegment::new(
    ///             SegmentId(i),
    ///             TrajectoryId(i),
    ///             Segment2::xy(
    ///                 bundle as f64 * 100.0,
    ///                 lane as f64 * 0.5,
    ///                 bundle as f64 * 100.0 + 10.0,
    ///                 lane as f64 * 0.5,
    ///             ),
    ///         )
    ///     })
    ///     .collect();
    /// let db = SegmentDatabase::from_segments(segments, SegmentDistance::default());
    /// let algo = LineSegmentClustering::new(&db, ClusterConfig::new(1.5, 3));
    ///
    /// // Any worker count returns the identical clustering.
    /// let sequential = algo.run();
    /// assert_eq!(sequential.clusters.len(), 3);
    /// for threads in [2, 4, 8] {
    ///     assert_eq!(algo.run_parallel(threads), sequential);
    /// }
    /// ```
    pub fn run_parallel(&self, threads: usize) -> Clustering {
        self.run_parallel_with_stats(threads).0
    }

    /// [`Self::run_parallel`] plus the run's [`ClusterStats`]. The prune
    /// counters aggregate across all shard workers (they share one index),
    /// and because every worker queries the same candidate universe the
    /// totals match the sequential run's on the same database.
    pub fn run_parallel_with_stats(&self, threads: usize) -> (Clustering, ClusterStats) {
        if threads <= 1 || self.db.len() <= 1 {
            return self.run_with_stats();
        }
        crate::shard::run_sharded(self.db, &self.config, threads)
    }

    /// Dispatches on the configured [`Parallelism`] knob: the sequential
    /// loop when it resolves to one thread, the sharded parallel path
    /// otherwise.
    ///
    /// Unlike the explicit [`Self::run_parallel`], the automatic path caps
    /// the worker count so every shard holds a meaningful slice of the
    /// database — on small inputs spawn + merge overhead would otherwise
    /// eat the parallel gain (the output is identical either way, so this
    /// is purely a scheduling decision).
    pub fn run_configured(&self) -> Clustering {
        /// Fewer segments than this per worker and the parallel path stops
        /// paying for itself.
        const MIN_SEGMENTS_PER_SHARD: usize = 64;
        let cap = (self.db.len() / MIN_SEGMENTS_PER_SHARD).max(1);
        self.run_parallel(self.config.parallelism.thread_count().min(cap))
    }

    /// Lines 17–28: BFS expansion of a density-connected set.
    #[allow(clippy::too_many_arguments)]
    fn expand_cluster(
        &self,
        index: &NeighborIndex<D>,
        queue: &mut VecDeque<u32>,
        cluster_id: u32,
        raw: &mut [Option<u32>],
        classified: &mut [bool],
        visited_noise: &mut [bool],
        scratch: &mut Vec<u32>,
    ) {
        while let Some(m) = queue.pop_front() {
            // lines 19–20
            self.db
                .neighborhood_into(index, m, self.config.eps, scratch);
            let cardinality = self
                .db
                .neighborhood_cardinality(scratch, self.config.weighted);
            if cardinality >= self.config.min_lns {
                // lines 21–26
                for &x in scratch.iter() {
                    let xi = x as usize;
                    let was_unclassified = !classified[xi];
                    let was_noise = visited_noise[xi];
                    if was_unclassified || was_noise {
                        raw[xi] = Some(cluster_id);
                        classified[xi] = true;
                        visited_noise[xi] = false;
                        if was_unclassified {
                            queue.push_back(x); // line 26
                        }
                    }
                }
            }
        }
    }
}

/// Step 3 of Figure 12 (lines 13–16), shared by the sequential and sharded
/// parallel paths: gather members per raw cluster id, apply the
/// trajectory-cardinality filter, renumber densely, and build the final
/// label array. Member lists come out ascending because segments are
/// scanned in id order.
pub(crate) fn finalize_raw<const D: usize>(
    db: &SegmentDatabase<D>,
    raw: &[Option<u32>],
    raw_cluster_count: u32,
    threshold: usize,
) -> Clustering {
    let n = raw.len();
    let mut members_by_raw: Vec<Vec<u32>> = vec![Vec::new(); raw_cluster_count as usize];
    for (seg, assignment) in raw.iter().enumerate() {
        if let Some(c) = assignment {
            members_by_raw[*c as usize].push(seg as u32);
        }
    }
    let mut labels = vec![SegmentLabel::Noise; n];
    let mut clusters = Vec::new();
    let mut filtered_out = 0usize;
    for members in members_by_raw {
        if members.is_empty() {
            continue;
        }
        let mut trajectories: Vec<TrajectoryId> =
            members.iter().map(|&m| db.trajectory_of(m)).collect();
        trajectories.sort_unstable();
        trajectories.dedup();
        if trajectories.len() < threshold {
            filtered_out += 1; // line 16: cluster removed; members → noise
            continue;
        }
        let id = ClusterId(clusters.len() as u32);
        for &m in &members {
            labels[m as usize] = SegmentLabel::Cluster(id);
        }
        clusters.push(Cluster {
            id,
            members,
            trajectories,
        });
    }
    Clustering {
        labels,
        clusters,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{IdentifiedSegment, Segment2, SegmentDistance, SegmentId};

    /// Builds a database where each entry supplies its own trajectory id,
    /// letting tests control trajectory cardinality precisely.
    fn db(entries: &[(Segment2, u32)]) -> SegmentDatabase<2> {
        let segs = entries
            .iter()
            .enumerate()
            .map(|(k, (s, tr))| IdentifiedSegment::new(SegmentId(k as u32), TrajectoryId(*tr), *s))
            .collect();
        SegmentDatabase::from_segments(segs, SegmentDistance::default())
    }

    /// A bundle of `count` horizontal segments spaced `gap` apart
    /// vertically starting at `y0`, each from its own trajectory starting
    /// at `tr0`.
    fn bundle(y0: f64, gap: f64, count: u32, tr0: u32, x0: f64) -> Vec<(Segment2, u32)> {
        (0..count)
            .map(|i| {
                (
                    Segment2::xy(x0, y0 + gap * i as f64, x0 + 10.0, y0 + gap * i as f64),
                    tr0 + i,
                )
            })
            .collect()
    }

    #[test]
    fn single_dense_bundle_forms_one_cluster() {
        let entries = bundle(0.0, 0.5, 6, 0, 0.0);
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        assert_eq!(clustering.clusters.len(), 1);
        assert_eq!(clustering.clusters[0].members.len(), 6);
        assert_eq!(clustering.clusters[0].trajectory_cardinality(), 6);
        assert_eq!(clustering.noise_count(), 0);
        assert_eq!(clustering.cluster_sizes(), vec![6]);
    }

    #[test]
    fn two_separated_bundles_form_two_clusters() {
        let mut entries = bundle(0.0, 0.5, 5, 0, 0.0);
        entries.extend(bundle(100.0, 0.5, 5, 10, 0.0));
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        assert_eq!(clustering.clusters.len(), 2);
        // Cluster ids are dense and label arrays agree with member lists.
        for c in &clustering.clusters {
            for &m in &c.members {
                assert_eq!(clustering.labels[m as usize], SegmentLabel::Cluster(c.id));
            }
        }
    }

    #[test]
    fn sparse_outliers_are_noise() {
        let mut entries = bundle(0.0, 0.5, 5, 0, 0.0);
        entries.push((Segment2::xy(500.0, 500.0, 510.0, 500.0), 99));
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        assert_eq!(clustering.clusters.len(), 1);
        let noise = clustering.noise();
        assert_eq!(noise, vec![5], "the outlier is noise");
        assert_eq!(clustering.noise_count(), noise.len());
        assert!((clustering.noise_ratio() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_cardinality_filter_removes_single_trajectory_clusters() {
        // Six tightly packed segments, but all from ONE trajectory: the
        // density test passes, the Definition 10 filter must reject.
        let entries: Vec<(Segment2, u32)> = (0..6)
            .map(|i| (Segment2::xy(0.0, 0.2 * i as f64, 10.0, 0.2 * i as f64), 7))
            .collect();
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        assert!(clustering.clusters.is_empty());
        assert_eq!(clustering.filtered_out, 1);
        assert_eq!(clustering.noise_count(), 6, "filtered members become noise");
    }

    #[test]
    fn min_trajectories_override() {
        // Two trajectories only; default threshold (MinLns = 3) filters the
        // cluster, an explicit threshold of 2 keeps it.
        let entries: Vec<(Segment2, u32)> = (0..6)
            .map(|i| {
                (
                    Segment2::xy(0.0, 0.2 * i as f64, 10.0, 0.2 * i as f64),
                    (i % 2) as u32,
                )
            })
            .collect();
        let database = db(&entries);
        let default_run = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        assert!(default_run.clusters.is_empty());
        let relaxed = LineSegmentClustering::new(
            &database,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(1.5, 3)
            },
        )
        .run();
        assert_eq!(relaxed.clusters.len(), 1);
    }

    #[test]
    fn chain_is_density_connected_through_cores() {
        // A long chain of closely spaced segments: every interior segment
        // is core, so the whole chain is one density-connected set.
        let entries: Vec<(Segment2, u32)> = (0..20)
            .map(|i| (Segment2::xy(0.0, 0.4 * i as f64, 10.0, 0.4 * i as f64), i))
            .collect();
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.0, 3)).run();
        assert_eq!(clustering.clusters.len(), 1, "one connected chain");
        assert_eq!(clustering.clusters[0].members.len(), 20);
    }

    #[test]
    fn border_segment_joins_but_does_not_expand() {
        // Classic DBSCAN border case: a segment within ε of a core segment
        // but itself non-core joins the cluster; a second segment only
        // reachable through the border must stay noise.
        let mut entries = bundle(0.0, 0.4, 5, 0, 0.0); // dense core at y=0..1.6
        entries.push((Segment2::xy(0.0, 3.0, 10.0, 3.0), 50)); // border (near y=1.6? no: 1.4 away)
        entries.push((Segment2::xy(0.0, 5.8, 10.0, 5.8), 51)); // beyond the border
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(
            &database,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(1.5, 4)
            },
        )
        .run();
        assert_eq!(clustering.clusters.len(), 1);
        let labels = &clustering.labels;
        assert_eq!(
            labels[5],
            SegmentLabel::Cluster(ClusterId(0)),
            "border segment is absorbed"
        );
        assert_eq!(
            labels[6],
            SegmentLabel::Noise,
            "no expansion through border"
        );
    }

    #[test]
    fn border_segment_is_not_stolen_by_later_cluster() {
        // Two dense bundles share one border segment halfway between them.
        // The border (id 5, y = 3.0) is within ε of the top of bundle A
        // (y = 1.6) and the bottom of bundle B (y = 4.4) but is itself
        // non-core (its neighborhood {1.6, 3.0, 4.4} has cardinality 3 <
        // MinLns 4). Bundle A seeds first (lower ids) and absorbs the
        // border; when bundle B's seed later expands, it must NOT steal
        // the border from cluster 0 — the pre-fix code unconditionally
        // re-assigned every neighborhood member.
        let mut entries = bundle(0.0, 0.4, 5, 0, 0.0); // ids 0–4: bundle A
        entries.push((Segment2::xy(0.0, 3.0, 10.0, 3.0), 50)); // id 5: border
        entries.extend(bundle(4.4, 0.4, 5, 10, 0.0)); // ids 6–10: bundle B
        let database = db(&entries);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 4)).run();
        assert_eq!(clustering.clusters.len(), 2, "both bundles survive");
        let [a, b] = &clustering.clusters[..] else {
            unreachable!("two clusters asserted above")
        };
        assert!(a.members.contains(&0), "cluster 0 is bundle A");
        assert_eq!(
            a.members,
            vec![0, 1, 2, 3, 4, 5],
            "the earlier cluster keeps its border segment"
        );
        assert_eq!(b.members, vec![6, 7, 8, 9, 10], "no stolen member");
        assert_eq!(
            clustering.labels[5],
            SegmentLabel::Cluster(a.id),
            "border label agrees with cluster A's member list"
        );
        // Labels and member lists stay mutually consistent for every
        // cluster — the invariant the stealing bug violated.
        for c in &clustering.clusters {
            for &m in &c.members {
                assert_eq!(clustering.labels[m as usize], SegmentLabel::Cluster(c.id));
            }
        }
    }

    #[test]
    fn weighted_cardinality_can_promote_sparse_neighborhoods() {
        // Two heavy segments whose combined weight passes MinLns = 4 even
        // though only 2 segments are present.
        let segs = vec![
            IdentifiedSegment {
                id: SegmentId(0),
                trajectory: TrajectoryId(0),
                segment: Segment2::xy(0.0, 0.0, 10.0, 0.0),
                weight: 3.0,
            },
            IdentifiedSegment {
                id: SegmentId(1),
                trajectory: TrajectoryId(1),
                segment: Segment2::xy(0.0, 0.3, 10.0, 0.3),
                weight: 3.0,
            },
        ];
        let database = SegmentDatabase::from_segments(segs, SegmentDistance::default());
        let unweighted = LineSegmentClustering::new(
            &database,
            ClusterConfig {
                min_trajectories: Some(2),
                ..ClusterConfig::new(1.0, 4)
            },
        )
        .run();
        assert!(unweighted.clusters.is_empty());
        let weighted = LineSegmentClustering::new(
            &database,
            ClusterConfig {
                weighted: true,
                min_trajectories: Some(2),
                ..ClusterConfig::new(1.0, 4)
            },
        )
        .run();
        assert_eq!(weighted.clusters.len(), 1);
    }

    #[test]
    fn index_kinds_produce_identical_clusterings() {
        let mut entries = bundle(0.0, 0.5, 8, 0, 0.0);
        entries.extend(bundle(40.0, 0.7, 6, 20, 5.0));
        entries.push((Segment2::xy(200.0, 0.0, 210.0, 0.0), 90));
        let database = db(&entries);
        let mut results = Vec::new();
        for kind in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
            let clustering = LineSegmentClustering::new(
                &database,
                ClusterConfig {
                    index: kind,
                    ..ClusterConfig::new(2.0, 3)
                },
            )
            .run();
            results.push(clustering);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn empty_database() {
        let database = db(&[]);
        let clustering = LineSegmentClustering::new(&database, ClusterConfig::new(1.0, 2)).run();
        assert!(clustering.clusters.is_empty());
        assert!(clustering.labels.is_empty());
        assert_eq!(clustering.noise_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "MinLns")]
    fn zero_min_lns_rejected() {
        let database = db(&[]);
        let _ = LineSegmentClustering::new(&database, ClusterConfig::new(1.0, 0));
    }

    #[test]
    fn determinism_across_runs() {
        let mut entries = bundle(0.0, 0.5, 10, 0, 0.0);
        entries.extend(bundle(30.0, 0.5, 10, 10, 0.0));
        let database = db(&entries);
        let a = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        let b = LineSegmentClustering::new(&database, ClusterConfig::new(1.5, 3)).run();
        assert_eq!(a, b);
    }
}
