//! Snapshot-isolated reads over the streaming engine.
//!
//! [`IncrementalClustering`] is a single-writer structure: `insert` mutates
//! the database, index, and cluster state in place. Serving queries from
//! it directly would force every reader to lock out the writer (and each
//! other) for the full duration of a query. This module separates the two
//! roles:
//!
//! * [`ClusterSnapshot`] — an immutable, self-contained view of one
//!   engine state: the clustering, the representative trajectories, and
//!   the stream counters. Once captured it never changes, so any number
//!   of readers can query it concurrently without synchronisation.
//! * [`SnapshotCell`] — the publication point: a mutex-guarded
//!   `Arc<ClusterSnapshot>` the writer swaps after ingesting a batch.
//!   Readers take the lock only long enough to clone the `Arc` (two
//!   atomic operations); queries then run entirely on their pinned
//!   snapshot while the writer races ahead.
//!
//! **Equivalence guarantee.** A snapshot captured after the engine has
//! ingested trajectories `t₀ … tₖ` is exactly the batch pipeline's output
//! on that prefix: [`ClusterSnapshot::clustering`] equals
//! [`Traclus::run`]'s clustering label for label (the streaming engine's
//! invariant), and the representatives are produced by the same
//! [`representatives_for`] tail the batch path uses. Readers never see a
//! half-applied insert — they see *some* prefix, bit-identical to what a
//! batch run over that prefix would produce.
//!
//! ```
//! use traclus_core::{ClusterSnapshot, IncrementalClustering, SnapshotCell, TraclusConfig};
//! use traclus_geom::{Point2, Trajectory, TrajectoryId};
//!
//! let config = TraclusConfig { eps: 5.0, min_lns: 3, ..TraclusConfig::default() };
//! let cell = SnapshotCell::<2>::new(config);
//! let mut engine = IncrementalClustering::<2>::new(config);
//! for i in 0..8u32 {
//!     let t = Trajectory::new(
//!         TrajectoryId(i),
//!         (0..25).map(|k| Point2::xy(k as f64 * 4.0, i as f64 * 0.3)).collect(),
//!     );
//!     engine.insert(&t);
//!     cell.publish_from(&engine);
//! }
//! let snap = cell.load(); // a reader's pinned view
//! assert_eq!(snap.trajectories(), 8);
//! assert_eq!(snap.clusters().len(), 1, "one shared corridor");
//! ```

use std::sync::{Arc, Mutex};

use traclus_geom::{Aabb, Point, Trajectory, TrajectoryId};

use crate::cluster::{ClusterId, Clustering};
use crate::stream::{IncrementalClustering, StreamStats};
use crate::{representatives_for, TraclusCluster, TraclusConfig};

#[cfg(doc)]
use crate::Traclus;

/// An immutable view of one streaming-engine state: clustering,
/// representatives, and counters, frozen at a publication epoch.
///
/// Cheap to share (`Arc`-cloned by [`SnapshotCell::load`]) and safe to
/// query from any number of threads. Queries are answered from the
/// cluster structure and the representative trajectories — the snapshot
/// deliberately does **not** clone the segment database, so it stays
/// small no matter how much has been ingested.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot<const D: usize> {
    epoch: u64,
    trajectories: usize,
    segments: usize,
    clustering: Clustering,
    clusters: Vec<TraclusCluster<D>>,
    stats: StreamStats,
    config: TraclusConfig,
}

impl<const D: usize> ClusterSnapshot<D> {
    /// The snapshot of an engine that has ingested nothing (epoch 0).
    pub fn empty(config: TraclusConfig) -> Self {
        Self {
            epoch: 0,
            trajectories: 0,
            segments: 0,
            clustering: Clustering {
                labels: Vec::new(),
                clusters: Vec::new(),
                filtered_out: 0,
            },
            clusters: Vec::new(),
            stats: StreamStats::default(),
            config,
        }
    }

    /// Captures the engine's current state under the given epoch.
    ///
    /// This is the expensive step (it clones the clustering and runs the
    /// representative sweep); do it **outside** any lock shared with
    /// readers — [`SnapshotCell::publish_from`] does.
    pub fn capture(engine: &IncrementalClustering<D>, epoch: u64) -> Self {
        let clustering = engine.snapshot();
        // The clustering is labelled over the live window (dense ids), so
        // the representative sweep must read the matching live database.
        let live = engine.live_database();
        let clusters = representatives_for(engine.config(), &live, &clustering);
        Self {
            epoch,
            trajectories: engine.stats().trajectories,
            segments: engine.live_len(),
            clustering,
            clusters,
            stats: engine.stats(),
            config: *engine.config(),
        }
    }

    /// The publication epoch (0 for [`Self::empty`], then strictly
    /// increasing per [`SnapshotCell::publish_from`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Trajectories ingested when this snapshot was captured — the prefix
    /// length the equivalence guarantee refers to.
    pub fn trajectories(&self) -> usize {
        self.trajectories
    }

    /// Segments in the engine's database at capture time.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The raw clustering (labels, clusters, filter diagnostics) — equal
    /// to the batch pipeline's clustering on the same prefix.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Clusters with their representative trajectories.
    pub fn clusters(&self) -> &[TraclusCluster<D>] {
        &self.clusters
    }

    /// The engine's cumulative counters at capture time.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The configuration the engine runs under.
    pub fn config(&self) -> &TraclusConfig {
        &self.config
    }

    /// The representative trajectories alone, in cluster order.
    pub fn representatives(&self) -> impl Iterator<Item = &Trajectory<D>> {
        self.clusters.iter().map(|c| &c.representative)
    }

    /// Clusters containing the given trajectory, in cluster order.
    pub fn membership(&self, trajectory: TrajectoryId) -> Vec<ClusterId> {
        self.clusters
            .iter()
            .filter(|c| c.cluster.trajectories.contains(&trajectory))
            .map(|c| c.cluster.id)
            .collect()
    }

    /// The cluster whose representative trajectory passes closest to the
    /// probe point, with that (Euclidean point-to-polyline) distance.
    /// `None` when there are no clusters. Ties resolve to the lowest
    /// cluster id, so the answer is deterministic.
    pub fn nearest_cluster(&self, probe: &Point<D>) -> Option<(ClusterId, f64)> {
        let mut best: Option<(ClusterId, f64)> = None;
        for c in &self.clusters {
            let Some(d) = distance_to_polyline(&c.representative, probe) else {
                continue;
            };
            let closer = match best {
                Some((_, bd)) => d < bd,
                None => true,
            };
            if closer {
                best = Some((c.cluster.id, d));
            }
        }
        best
    }

    /// Clusters whose representative trajectory intersects the axis-
    /// aligned region (edge-bounding-box test), plus how many distinct
    /// trajectories they cover — a cheap "what moves through here"
    /// aggregate.
    pub fn region_summary(&self, region: &Aabb<D>) -> RegionSummary {
        let mut clusters = Vec::new();
        let mut members: Vec<TrajectoryId> = Vec::new();
        for c in &self.clusters {
            let hits = c
                .representative
                .edges()
                .any(|e| Aabb::from_segment(&e).intersects(region));
            if hits {
                clusters.push(c.cluster.id);
                members.extend_from_slice(&c.cluster.trajectories);
            }
        }
        members.sort_unstable();
        members.dedup();
        RegionSummary {
            clusters,
            distinct_trajectories: members.len(),
        }
    }
}

/// Euclidean distance from a point to a polyline (`None` for an empty
/// trajectory; a single-point trajectory measures point-to-point).
fn distance_to_polyline<const D: usize>(polyline: &Trajectory<D>, p: &Point<D>) -> Option<f64> {
    let mut best: Option<f64> = None;
    for edge in polyline.edges() {
        let d = edge.segment_distance(p);
        best = Some(match best {
            Some(b) if b <= d => b,
            _ => d,
        });
    }
    if best.is_none() {
        best = polyline.points.first().map(|q| q.distance(p));
    }
    best
}

/// What [`ClusterSnapshot::region_summary`] reports for a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSummary {
    /// Clusters whose representative intersects the region, in cluster
    /// order.
    pub clusters: Vec<ClusterId>,
    /// Distinct trajectories contributing to those clusters.
    pub distinct_trajectories: usize,
}

/// The publication point between one writer and any number of readers.
///
/// Std-only epoch/arc-swap: the current snapshot lives behind a
/// `Mutex<Arc<…>>`. [`Self::load`] holds the lock just long enough to
/// clone the `Arc`; [`Self::publish_from`] materialises the next snapshot
/// **outside** the lock (snapshot capture is the expensive part) and then
/// swaps the pointer. Readers therefore never wait on snapshot
/// construction, and the writer never waits on queries.
///
/// The cell assumes a single writer (the streaming engine's owner); with
/// multiple concurrent writers epochs would still be monotonic per
/// [`Self::publish_from`] call ordering, but "latest published" would be
/// racy — matching the engine itself, which is `&mut` on ingest anyway.
#[derive(Debug)]
pub struct SnapshotCell<const D: usize> {
    current: Mutex<Arc<ClusterSnapshot<D>>>,
}

impl<const D: usize> SnapshotCell<D> {
    /// A cell holding the empty snapshot (epoch 0) for this configuration.
    pub fn new(config: TraclusConfig) -> Self {
        Self {
            current: Mutex::new(Arc::new(ClusterSnapshot::empty(config))),
        }
    }

    /// The latest published snapshot. O(1): one brief lock and an `Arc`
    /// clone — queries run on the returned snapshot with no further
    /// synchronisation.
    pub fn load(&self) -> Arc<ClusterSnapshot<D>> {
        Arc::clone(&lock_unpoisoned(&self.current))
    }

    /// Captures the engine's state as the next epoch and publishes it,
    /// returning the new snapshot. Capture runs outside the lock.
    pub fn publish_from(&self, engine: &IncrementalClustering<D>) -> Arc<ClusterSnapshot<D>> {
        let epoch = self.load().epoch + 1;
        let snapshot = Arc::new(ClusterSnapshot::capture(engine, epoch));
        *lock_unpoisoned(&self.current) = Arc::clone(&snapshot);
        snapshot
    }

    /// Publishes an already-captured snapshot verbatim (e.g. one built on
    /// a worker thread). The caller owns epoch discipline here.
    pub fn publish(&self, snapshot: ClusterSnapshot<D>) -> Arc<ClusterSnapshot<D>> {
        let snapshot = Arc::new(snapshot);
        *lock_unpoisoned(&self.current) = Arc::clone(&snapshot);
        snapshot
    }
}

/// Locks a mutex, continuing through poisoning: the guarded value is a
/// bare `Arc` pointer swap, so there is no torn state a panicking thread
/// could have left behind.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Traclus;
    use traclus_geom::Point2;

    fn corridor(i: u32, n: usize) -> Trajectory<2> {
        Trajectory::new(
            TrajectoryId(i),
            (0..n)
                .map(|k| Point2::xy(k as f64 * 4.0, i as f64 * 0.3))
                .collect(),
        )
    }

    fn config() -> TraclusConfig {
        TraclusConfig {
            eps: 5.0,
            min_lns: 3,
            ..TraclusConfig::default()
        }
    }

    #[test]
    fn capture_matches_batch_prefix() {
        let config = config();
        let trajectories: Vec<_> = (0..8).map(|i| corridor(i, 25)).collect();
        let mut engine = IncrementalClustering::<2>::new(config);
        for (k, t) in trajectories.iter().enumerate() {
            engine.insert(t);
            let snap = ClusterSnapshot::capture(&engine, k as u64 + 1);
            let batch = Traclus::new(config).run(&trajectories[..=k]);
            assert_eq!(snap.clustering(), &batch.clustering, "prefix {}", k + 1);
            assert_eq!(snap.clusters(), &batch.clusters[..], "prefix {}", k + 1);
            assert_eq!(snap.trajectories(), k + 1);
        }
    }

    #[test]
    fn cell_publishes_monotonic_epochs() {
        let config = config();
        let cell = SnapshotCell::<2>::new(config);
        assert_eq!(cell.load().epoch(), 0);
        let mut engine = IncrementalClustering::<2>::new(config);
        for i in 0..3 {
            engine.insert(&corridor(i, 25));
            let published = cell.publish_from(&engine);
            assert_eq!(published.epoch(), u64::from(i) + 1);
            assert_eq!(cell.load().epoch(), u64::from(i) + 1);
        }
        // An old reader's Arc stays valid after newer publications.
        let pinned = cell.load();
        engine.insert(&corridor(3, 25));
        cell.publish_from(&engine);
        assert_eq!(pinned.epoch(), 3);
        assert_eq!(cell.load().epoch(), 4);
    }

    #[test]
    fn queries_answer_from_the_snapshot() {
        let config = config();
        let mut engine = IncrementalClustering::<2>::new(config);
        for i in 0..8 {
            engine.insert(&corridor(i, 25));
        }
        let snap = ClusterSnapshot::capture(&engine, 1);
        assert_eq!(snap.clusters().len(), 1);
        let cluster_id = snap.clusters()[0].cluster.id;

        // Every corridor trajectory is a member; an unknown id is not.
        assert_eq!(snap.membership(TrajectoryId(0)), vec![cluster_id]);
        assert_eq!(snap.membership(TrajectoryId(99)), Vec::new());

        // A probe on the corridor is near the representative; far away is far.
        let (near_id, near_d) = snap.nearest_cluster(&Point2::xy(48.0, 1.0)).unwrap();
        assert_eq!(near_id, cluster_id);
        assert!(near_d < 3.0, "probe on the corridor: {near_d}");
        let (_, far_d) = snap.nearest_cluster(&Point2::xy(48.0, 500.0)).unwrap();
        assert!(far_d > 400.0, "probe far away: {far_d}");

        // The corridor crosses a region around x ∈ [40, 60].
        let hit = snap.region_summary(&Aabb::new([40.0, -5.0], [60.0, 5.0]));
        assert_eq!(hit.clusters, vec![cluster_id]);
        assert_eq!(hit.distinct_trajectories, 8);
        let miss = snap.region_summary(&Aabb::new([40.0, 400.0], [60.0, 500.0]));
        assert_eq!(miss.clusters, Vec::new());
        assert_eq!(miss.distinct_trajectories, 0);
    }

    #[test]
    fn empty_snapshot_queries_are_defined() {
        let snap = ClusterSnapshot::<2>::empty(config());
        assert_eq!(snap.nearest_cluster(&Point2::xy(0.0, 0.0)), None);
        assert_eq!(snap.membership(TrajectoryId(0)), Vec::new());
        let summary = snap.region_summary(&Aabb::new([0.0, 0.0], [1.0, 1.0]));
        assert_eq!(summary.distinct_trajectories, 0);
    }
}
