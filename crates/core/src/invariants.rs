//! Internal-consistency checkers compiled in by the `invariant-checks`
//! feature (`cargo test -p traclus-core --features invariant-checks`).
//!
//! Each checker asserts a structural invariant the algorithms rely on but
//! ordinary tests only observe indirectly through final outputs:
//!
//! * the union-find stays acyclic and in min-root canonical form (the
//!   sequential-equivalence arguments in [`crate::shard`] and
//!   [`crate::stream`] number components by minimum core id — a
//!   non-canonical root would silently renumber clusters);
//! * the [`SegmentDatabase`] structure-of-arrays cache stays bit-coherent
//!   with the authoritative array-of-structs segments after streaming
//!   appends (the batched distance kernel reads only the SoA);
//! * an incrementally grown spatial index answers exactly like a full
//!   scan (a stale or mis-inserted entry would corrupt ε-neighborhoods
//!   long before any test compares clusterings);
//! * a decrementally shrunk database keeps its tombstone flags, cached
//!   live count, and dense compaction mutually coherent (the live-window
//!   batch comparison is only meaningful if compaction is faithful);
//! * at sampled points of a stream — and after **every** removal —
//!   `snapshot()` still equals the batch run over the live window (a cheap
//!   in-process spot check of the headline guarantee).
//!
//! The checkers are plain `assert!`s: with the feature off they do not
//! exist and the hot paths carry zero overhead; with it on, the regular
//! test suite doubles as a sanitizer pass (the CI `invariant-checks` job).

use traclus_geom::SegmentSoa;

use crate::segment_db::{NeighborIndex, SegmentDatabase};
use crate::shard::UnionFind;
use crate::IndexKind;

/// Asserts the union-find is acyclic and in min-root canonical form.
///
/// Both follow from one local property: every parent pointer is
/// non-increasing (`parent[x] ≤ x`). Chains then strictly decrease until a
/// self-loop root, so there are no cycles, and the root reached from any
/// member is ≤ that member — being itself a member, it is the component
/// minimum. Union-by-min and path halving both preserve the property;
/// anything else is a bug.
pub(crate) fn assert_union_find_canonical(dsu: &UnionFind, context: &str) {
    for (x, &p) in dsu.parent_slice().iter().enumerate() {
        assert!(
            (p as usize) <= x,
            "invariant-checks[{context}]: union-find parent increases at \
             {x} -> {p}; min-root canonical form violated"
        );
    }
}

/// Asserts the SoA geometry cache matches a from-scratch recomputation of
/// the stored segments, field for field (`SegmentSoa` compares all six
/// component arrays). Streaming appends grow the cache incrementally; any
/// divergence from the batch construction would feed the batched distance
/// kernel different operands than the scalar path sees.
pub(crate) fn assert_soa_coherent<const D: usize>(db: &SegmentDatabase<D>, context: &str) {
    let fresh = SegmentSoa::from_segments(db.segments().iter().map(|s| &s.segment));
    assert!(
        fresh == *db.soa(),
        "invariant-checks[{context}]: SoA cache diverged from a fresh \
         rebuild over {} segments",
        db.len()
    );
    for id in 0..db.len() as u32 {
        assert!(
            *db.bbox_of(id) == db.segment(id).bounding_box(),
            "invariant-checks[{context}]: cached bbox of segment {id} \
             diverged from its segment"
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::{IncrementalClustering, IndexKind, TraclusConfig};
    use traclus_geom::{Point2, Trajectory, TrajectoryId};

    /// Drives every checker through the streaming engine with each index
    /// kind — including the power-of-two snapshot==batch samples at 1, 2,
    /// 4, and 8 trajectories, and the per-removal snapshot==batch check of
    /// the decremental sanitizer — so the sanitizer pass runs even if the
    /// broader suites are filtered.
    #[test]
    fn checkers_pass_on_a_streamed_corridor() {
        for index in [IndexKind::Linear, IndexKind::Grid, IndexKind::RTree] {
            let config = TraclusConfig {
                eps: 3.0,
                min_lns: 3,
                index,
                ..TraclusConfig::default()
            };
            let mut engine = IncrementalClustering::<2>::new(config);
            for i in 0..9u32 {
                engine.insert(&Trajectory::new(
                    TrajectoryId(i),
                    (0..15)
                        .map(|k| Point2::xy(k as f64 * 5.0, i as f64 * 0.4))
                        .collect(),
                ));
            }
            assert!(!engine.snapshot().clusters.is_empty());
            // Decremental pass: every removal runs the post-removal
            // sanitizer (tombstone coherence, scoped union-find, shrunk
            // index vs full scan, snapshot == live-window batch).
            for i in [4u32, 0, 8] {
                let report = engine.remove_trajectory(TrajectoryId(i));
                assert_eq!(report.removed_trajectories, 1, "{index:?} tr {i}");
            }
            assert_eq!(engine.live_trajectories(), 6);
        }
    }
}

/// Asserts the tombstone bookkeeping of a decrementally shrunk database is
/// coherent: the cached live count matches the flags, and
/// [`SegmentDatabase::compact_live`] reproduces exactly the live segments
/// in ascending-id order under densely reassigned ids — the contract that
/// lets `snapshot()` compare label-for-label against a batch run over the
/// surviving window.
pub(crate) fn assert_tombstones_coherent<const D: usize>(db: &SegmentDatabase<D>, context: &str) {
    let flagged = (0..db.len() as u32).filter(|&id| db.is_live(id)).count();
    assert!(
        flagged == db.live_len(),
        "invariant-checks[{context}]: cached live count {} != {flagged} set \
         tombstone flags",
        db.live_len()
    );
    let compact = db.compact_live();
    assert!(
        compact.len() == db.live_len() && compact.live_len() == compact.len(),
        "invariant-checks[{context}]: compact_live holds {} segments, \
         expected {}",
        compact.len(),
        db.live_len()
    );
    let mut dense = 0u32;
    for id in 0..db.len() as u32 {
        if !db.is_live(id) {
            continue;
        }
        let (sparse, packed) = (db.segment(id), compact.segment(dense));
        assert!(
            packed.id.0 == dense
                && sparse.trajectory == packed.trajectory
                && sparse.segment == packed.segment
                && sparse.weight == packed.weight,
            "invariant-checks[{context}]: compact_live slot {dense} diverged \
             from live segment {id}"
        );
        dense += 1;
    }
}

/// Asserts an admissible lower bound really was admissible for one pruned
/// candidate: re-scores the pair through the exact scalar distance and
/// aborts if it was actually within ε. Called from the filter step of
/// `SegmentDatabase::neighborhood_into` on **every** discard, so an
/// inadmissible bound dies at its first occurrence — with the pair, the
/// deciding tier, and both numbers — instead of surfacing later as an
/// aggregate clustering mismatch.
pub(crate) fn assert_pruned_pair_outside_eps<const D: usize>(
    db: &SegmentDatabase<D>,
    query: u32,
    cand: u32,
    eps: f64,
    tier: usize,
) {
    let exact = db.distance(query, cand);
    assert!(
        !(exact <= eps),
        "invariant-checks[prune]: tier-{tier} bound discarded candidate \
         {cand} of query {query}, but the exact distance {exact} ≤ ε = {eps} \
         — the lower bound is not admissible for this pair"
    );
}

/// Asserts the live index answers ε-neighborhood queries for `ids` exactly
/// like a full scan of the current database — the correctness contract of
/// [`NeighborIndex::insert`] after incremental growth.
pub(crate) fn assert_index_consistent<const D: usize>(
    db: &SegmentDatabase<D>,
    index: &NeighborIndex<D>,
    eps: f64,
    ids: &[u32],
    context: &str,
) {
    let linear = db.build_index(IndexKind::Linear, eps);
    let mut via_index = Vec::new();
    let mut via_scan = Vec::new();
    for &id in ids {
        db.neighborhood_into(index, id, eps, &mut via_index);
        db.neighborhood_into(&linear, id, eps, &mut via_scan);
        assert!(
            via_index == via_scan,
            "invariant-checks[{context}]: index disagrees with full scan \
             for segment {id}: {via_index:?} vs {via_scan:?}"
        );
    }
}
