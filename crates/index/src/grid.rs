//! Uniform grid index: boxes are hashed into fixed-size cells.
//!
//! Simple, cache-friendly, and near-optimal when query radii are known up
//! front (as they are here: the cell size is tied to the ε filter radius).
//! An entry is registered in every cell its box overlaps; queries visit the
//! cells overlapped by the window and deduplicate with a generation stamp.

// xtask:allow-file(hash-container): the cell map is lookup-only — queries
// walk the integer lattice `CellIter` (a fixed odometer order) and call
// `.get`, and per-cell id lists are in insertion order; the map itself is
// never iterated, so its random iteration order cannot leak into results.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;

use traclus_geom::Aabb;

use crate::SpatialIndex;

/// A uniform grid over `D`-dimensional space.
#[derive(Debug, Clone)]
pub struct GridIndex<const D: usize> {
    cell_size: f64,
    cells: HashMap<[i64; D], Vec<u32>>,
    /// `boxes[id]` for the final exactness check (`query_into` must not
    /// return ids whose box misses the window, or the "at most once"
    /// contract would be broken by cheap over-reporting).
    boxes: Vec<(u32, Aabb<D>)>,
    /// Deduplication stamps indexed by position in `boxes`.
    id_slot: HashMap<u32, usize>,
}

impl<const D: usize> GridIndex<D> {
    /// Builds a grid with the given cell size (must be positive and
    /// finite). A good choice is the ε filter radius: windows then overlap
    /// only O(3^D) cells.
    pub fn build(cell_size: f64, entries: impl IntoIterator<Item = (u32, Aabb<D>)>) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "grid cell size must be positive and finite"
        );
        let mut grid = Self {
            cell_size,
            cells: HashMap::new(),
            boxes: Vec::new(),
            id_slot: HashMap::new(),
        };
        for (id, bbox) in entries {
            grid.insert(id, bbox);
        }
        grid
    }

    /// Adds one entry.
    pub fn insert(&mut self, id: u32, bbox: Aabb<D>) {
        if bbox.is_empty() {
            return;
        }
        let slot = self.boxes.len();
        self.boxes.push((id, bbox));
        self.id_slot.insert(id, slot);
        let (lo, hi) = self.cell_range(&bbox);
        for key in CellIter::new(lo, hi) {
            self.cells.entry(key).or_default().push(id);
        }
    }

    /// Removes the entry with the given id, returning whether it was
    /// present. Cell lists drop the id wherever its box was registered;
    /// cells emptied by the removal are evicted from the map entirely, so
    /// a long-running sliding window cannot leak dead lattice keys.
    pub fn remove(&mut self, id: u32) -> bool {
        let Some(slot) = self.id_slot.remove(&id) else {
            return false;
        };
        let (_, bbox) = self.boxes.swap_remove(slot);
        if slot < self.boxes.len() {
            // The swap moved the tail entry into `slot`; re-point its id.
            self.id_slot.insert(self.boxes[slot].0, slot);
        }
        let (lo, hi) = self.cell_range(&bbox);
        for key in CellIter::new(lo, hi) {
            if let Some(ids) = self.cells.get_mut(&key) {
                ids.retain(|&e| e != id);
                if ids.is_empty() {
                    self.cells.remove(&key);
                }
            }
        }
        true
    }

    /// The cell size the grid was built with.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    fn cell_range(&self, bbox: &Aabb<D>) -> ([i64; D], [i64; D]) {
        let mut lo = [0i64; D];
        let mut hi = [0i64; D];
        for k in 0..D {
            lo[k] = (bbox.min[k] / self.cell_size).floor() as i64;
            hi[k] = (bbox.max[k] / self.cell_size).floor() as i64;
        }
        (lo, hi)
    }
}

impl<const D: usize> SpatialIndex<D> for GridIndex<D> {
    fn query_into(&self, window: &Aabb<D>, out: &mut Vec<u32>) {
        if window.is_empty() || self.boxes.is_empty() {
            return;
        }
        let (lo, hi) = self.cell_range(window);
        let mut seen: Vec<bool> = vec![false; self.boxes.len()];
        for key in CellIter::new(lo, hi) {
            if let Some(ids) = self.cells.get(&key) {
                for &id in ids {
                    let slot = self.id_slot[&id];
                    if !seen[slot] {
                        seen[slot] = true;
                        if self.boxes[slot].1.intersects(window) {
                            out.push(id);
                        }
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.boxes.len()
    }
}

/// Iterates over the integer lattice `[lo, hi]` in `D` dimensions.
struct CellIter<const D: usize> {
    lo: [i64; D],
    hi: [i64; D],
    cur: [i64; D],
    done: bool,
}

impl<const D: usize> CellIter<D> {
    fn new(lo: [i64; D], hi: [i64; D]) -> Self {
        let done = (0..D).any(|k| lo[k] > hi[k]);
        Self {
            lo,
            hi,
            cur: lo,
            done,
        }
    }
}

impl<const D: usize> Iterator for CellIter<D> {
    type Item = [i64; D];

    fn next(&mut self) -> Option<[i64; D]> {
        if self.done {
            return None;
        }
        let out = self.cur;
        // Odometer increment.
        for k in (0..D).rev() {
            if self.cur[k] < self.hi[k] {
                self.cur[k] += 1;
                return Some(out);
            }
            self.cur[k] = self.lo[k];
        }
        self.done = true;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScanIndex;

    fn aabb2(minx: f64, miny: f64, maxx: f64, maxy: f64) -> Aabb<2> {
        Aabb::new([minx, miny], [maxx, maxy])
    }

    #[test]
    fn finds_entries_across_cells() {
        // A box spanning several cells must be found from any of them.
        let grid = GridIndex::build(1.0, vec![(42, aabb2(0.5, 0.5, 3.5, 0.6))]);
        for x in [0.5, 1.5, 2.5, 3.4] {
            let hits = grid.query(&aabb2(x, 0.55, x + 0.01, 0.56));
            assert_eq!(hits, vec![42], "query at x={x}");
        }
        assert!(grid.query(&aabb2(5.0, 5.0, 6.0, 6.0)).is_empty());
    }

    #[test]
    fn no_duplicates_for_multi_cell_entries() {
        let grid = GridIndex::build(1.0, vec![(7, aabb2(0.0, 0.0, 5.0, 5.0))]);
        let hits = grid.query(&aabb2(0.0, 0.0, 5.0, 5.0));
        assert_eq!(hits, vec![7], "entry spans 36 cells but reported once");
    }

    #[test]
    fn negative_coordinates() {
        let grid = GridIndex::build(2.0, vec![(1, aabb2(-3.5, -3.5, -2.5, -2.5))]);
        assert_eq!(grid.query(&aabb2(-3.0, -3.0, -2.9, -2.9)), vec![1]);
        assert!(grid.query(&aabb2(2.0, 2.0, 3.0, 3.0)).is_empty());
    }

    #[test]
    fn agrees_with_linear_scan_on_a_lattice() {
        let mut entries = Vec::new();
        let mut id = 0;
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 * 0.7 - 3.0;
                let y = j as f64 * 1.3 - 6.0;
                entries.push((id, aabb2(x, y, x + 0.9, y + 0.4)));
                id += 1;
            }
        }
        let grid = GridIndex::build(1.5, entries.clone());
        let linear = LinearScanIndex::build(entries);
        for &(wx, wy, s) in &[(0.0, 0.0, 1.0), (-2.0, -5.0, 2.5), (3.0, 4.0, 0.1)] {
            let window = aabb2(wx, wy, wx + s, wy + s);
            let mut a = grid.query(&window);
            let mut b = linear.query(&window);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {window:?}");
        }
    }

    #[test]
    fn remove_drops_entry_from_every_cell() {
        // The box spans four cells; after removal no cell may report it.
        let mut grid = GridIndex::build(
            1.0,
            vec![
                (3, aabb2(0.5, 0.5, 3.5, 0.6)),
                (8, aabb2(0.5, 2.5, 1.5, 2.6)),
            ],
        );
        assert!(grid.remove(3));
        assert!(!grid.remove(3), "double removal reports absence");
        assert_eq!(grid.len(), 1);
        assert!(grid.query(&aabb2(0.0, 0.0, 4.0, 1.0)).is_empty());
        assert_eq!(grid.query(&aabb2(0.0, 2.0, 2.0, 3.0)), vec![8]);
        // The survivor sits in the swapped slot; dedup stamps must still
        // resolve it (regression for slot compaction after swap_remove).
        assert_eq!(grid.query(&aabb2(-10.0, -10.0, 10.0, 10.0)), vec![8]);
    }

    #[test]
    fn remove_can_empty_the_grid() {
        let entries: Vec<_> = (0..20u32)
            .map(|i| (i, aabb2(i as f64, 0.0, i as f64 + 0.5, 0.5)))
            .collect();
        let mut grid = GridIndex::build(1.0, entries);
        for i in 0..20u32 {
            assert!(grid.remove(i));
        }
        assert!(grid.is_empty());
        assert!(grid.cells.is_empty(), "emptied cells must be evicted");
        assert!(grid.query(&aabb2(-1.0, -1.0, 30.0, 30.0)).is_empty());
        // The emptied grid keeps accepting inserts.
        grid.insert(99, aabb2(2.0, 2.0, 3.0, 3.0));
        assert_eq!(grid.query(&aabb2(2.5, 2.5, 2.6, 2.6)), vec![99]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::<2>::build(0.0, vec![]);
    }

    #[test]
    fn empty_window_returns_nothing() {
        let grid = GridIndex::build(1.0, vec![(0, aabb2(0.0, 0.0, 1.0, 1.0))]);
        assert!(grid.query(&Aabb::empty()).is_empty());
    }
}
