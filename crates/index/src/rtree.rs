//! An R-tree built from scratch: STR (sort-tile-recursive) bulk loading
//! plus Guttman-style insertion with quadratic split.
//!
//! The paper's Lemma 3 invokes "an appropriate index such as the R-tree
//! \[10\]" (Guttman, SIGMOD 1984) to bring ε-neighborhood queries from O(n)
//! to O(log n). Bulk loading handles the common TRACLUS flow — partition
//! all trajectories, then index all segments at once — while insertion
//! supports incremental use.

use traclus_geom::Aabb;

use crate::SpatialIndex;

/// R-tree fan-out parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node before a split (Guttman's `M`).
    pub max_entries: usize,
    /// Minimum entries per node after a split (Guttman's `m ≤ M/2`).
    pub min_entries: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        Self {
            max_entries: 16,
            min_entries: 6,
        }
    }
}

impl RTreeParams {
    /// Validates the Guttman constraints `2 ≤ m ≤ M/2`.
    pub fn validated(self) -> Self {
        assert!(self.max_entries >= 4, "R-tree needs max_entries ≥ 4");
        assert!(
            self.min_entries >= 2 && self.min_entries <= self.max_entries / 2,
            "R-tree needs 2 ≤ min_entries ≤ max_entries/2"
        );
        self
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node<const D: usize> {
    Leaf {
        entries: Vec<(u32, Aabb<D>)>,
    },
    Internal {
        children: Vec<(Aabb<D>, Box<Node<D>>)>,
    },
}

impl<const D: usize> Node<D> {
    fn bbox(&self) -> Aabb<D> {
        let mut b = Aabb::empty();
        match self {
            Node::Leaf { entries } => {
                for (_, e) in entries {
                    b.extend(e);
                }
            }
            Node::Internal { children } => {
                for (cb, _) in children {
                    b.extend(cb);
                }
            }
        }
        b
    }

    fn is_node_empty(&self) -> bool {
        match self {
            Node::Leaf { entries } => entries.is_empty(),
            Node::Internal { children } => children.is_empty(),
        }
    }

    fn count(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { children } => children.iter().map(|(_, c)| c.count()).sum(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children } => 1 + children.first().map_or(0, |(_, c)| c.depth()),
        }
    }

    fn query_into(&self, window: &Aabb<D>, out: &mut Vec<u32>) {
        match self {
            Node::Leaf { entries } => {
                for (id, b) in entries {
                    if b.intersects(window) {
                        out.push(*id);
                    }
                }
            }
            Node::Internal { children } => {
                for (b, child) in children {
                    if b.intersects(window) {
                        child.query_into(window, out);
                    }
                }
            }
        }
    }
}

/// An R-tree over id-tagged boxes.
///
/// Equality compares full node structure (parameters, every internal box,
/// every leaf entry in order), which is what the parallel-bulk-load
/// equivalence suites assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct RTree<const D: usize> {
    params: RTreeParams,
    root: Node<D>,
    len: usize,
}

impl<const D: usize> Default for RTree<D> {
    fn default() -> Self {
        Self::new(RTreeParams::default())
    }
}

impl<const D: usize> RTree<D> {
    /// An empty tree with the given parameters.
    pub fn new(params: RTreeParams) -> Self {
        Self {
            params: params.validated(),
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Bulk-loads with the STR (sort-tile-recursive) algorithm: full leaves,
    /// near-minimal overlap, O(n log n) build.
    pub fn bulk_load(
        params: RTreeParams,
        entries: impl IntoIterator<Item = (u32, Aabb<D>)>,
    ) -> Self {
        Self::bulk_load_parallel(params, entries, 1)
    }

    /// Bulk-loads with STR across `threads` worker threads, producing a
    /// tree **identical** to the sequential [`RTree::bulk_load`] for any
    /// thread count (asserted structurally by the equivalence suites).
    ///
    /// Three phases parallelise:
    ///
    /// 1. the dimension-0 stable sort runs as a parallel stable merge sort
    ///    — any stable sort yields the unique permutation ordered by
    ///    `(key, original index)`, so stably sorted chunks merged with
    ///    ties-take-left reproduce `slice::sort_by` exactly;
    /// 2. the per-slab recursive tiling — the slabs produced by the
    ///    top-level sort are disjoint sub-slices, each handed to the
    ///    sequential STR recursion on a worker;
    /// 3. leaf packing — worker boundaries are aligned to `max_entries`
    ///    multiples, so concatenating per-worker leaf runs equals the
    ///    sequential chunking.
    ///
    /// The upper internal levels stay sequential: they hold only
    /// ~`1/max_entries` of the data, and `Node` values move rather than
    /// copy, which makes a buffered parallel merge unprofitable there.
    /// Inputs below a small floor also take the sequential path — spawn
    /// and merge overhead dominates before ~1k entries.
    pub fn bulk_load_parallel(
        params: RTreeParams,
        entries: impl IntoIterator<Item = (u32, Aabb<D>)>,
        threads: usize,
    ) -> Self {
        let params = params.validated();
        let mut items: Vec<(u32, Aabb<D>)> = entries.into_iter().collect();
        let len = items.len();
        if items.is_empty() {
            return Self::new(params);
        }
        let threads = if len < MIN_PARALLEL_ENTRIES {
            1
        } else {
            threads.max(1)
        };
        // Tile recursively over dimensions, then chunk into leaves.
        str_sort_parallel(&mut items, params.max_entries, threads);
        let mut level: Vec<Node<D>> = pack_leaves(&items, params.max_entries, threads);
        while level.len() > 1 {
            let mut tagged: Vec<(Aabb<D>, Node<D>)> =
                level.into_iter().map(|n| (n.bbox(), n)).collect();
            str_sort_nodes(&mut tagged, 0, params.max_entries);
            level = tagged
                .chunks_mut(params.max_entries)
                .map(|chunk| Node::Internal {
                    children: chunk
                        .iter_mut()
                        .map(|(b, n)| {
                            (
                                *b,
                                Box::new(std::mem::replace(
                                    n,
                                    Node::Leaf {
                                        entries: Vec::new(),
                                    },
                                )),
                            )
                        })
                        .collect(),
                })
                .collect();
        }
        Self {
            params,
            root: level.pop().expect("non-empty level"),
            len,
        }
    }

    /// Inserts one entry (Guttman: choose-leaf by least enlargement,
    /// quadratic split on overflow).
    pub fn insert(&mut self, id: u32, bbox: Aabb<D>) {
        self.len += 1;
        if let Some((left, right)) = insert_rec(&mut self.root, id, &bbox, &self.params) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            drop(old_root); // fully replaced by left/right below
            self.root = Node::Internal {
                children: vec![
                    (left.bbox(), Box::new(left)),
                    (right.bbox(), Box::new(right)),
                ],
            };
        }
    }

    /// Removes the entry `(id, bbox)` — `bbox` must be the box the id was
    /// inserted with, which is what guides the descent (only subtrees whose
    /// box contains it can hold the entry). Returns whether it was found.
    ///
    /// Removal is deliberately simpler than Guttman's condense-tree: the
    /// entry is deleted in place, ancestor boxes are tightened, emptied
    /// nodes are pruned, and a root left with a single child collapses so
    /// the tree shrinks a level. Nodes may drop below `min_entries` — that
    /// costs query selectivity, never correctness, and the sliding-window
    /// engine periodically STR-rebuilds anyway (the same rebuild that heals
    /// insertion-degraded trees).
    pub fn remove(&mut self, id: u32, bbox: &Aabb<D>) -> bool {
        if !remove_rec(&mut self.root, id, bbox) {
            return false;
        }
        self.len -= 1;
        // Collapse single-child roots so leaf depth shrinks uniformly.
        loop {
            let collapsed = match &mut self.root {
                Node::Internal { children } if children.len() == 1 => {
                    let (_, child) = children.pop().expect("exactly one child");
                    *child
                }
                _ => break,
            };
            self.root = collapsed;
        }
        true
    }

    /// Tree height (1 for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Verifies structural invariants (used by tests): entry counts, bbox
    /// containment, and uniform leaf depth.
    pub fn check_invariants(&self) {
        fn walk<const D: usize>(node: &Node<D>, depth: usize, leaf_depth: &mut Option<usize>) {
            match node {
                Node::Leaf { .. } => match leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                },
                Node::Internal { children } => {
                    assert!(!children.is_empty(), "empty internal node");
                    for (b, child) in children {
                        let actual = child.bbox();
                        assert!(
                            b.contains(&actual),
                            "child bbox {actual:?} escapes parent entry {b:?}"
                        );
                        walk(child, depth + 1, leaf_depth);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, 0, &mut leaf_depth);
        assert_eq!(self.root.count(), self.len, "entry count mismatch");
    }
}

impl<const D: usize> SpatialIndex<D> for RTree<D> {
    fn query_into(&self, window: &Aabb<D>, out: &mut Vec<u32>) {
        if window.is_empty() {
            return;
        }
        self.root.query_into(window, out);
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Recursive STR tiling of raw entries: sort by the centre of dimension
/// `dim`, slice into `⌈n/slab⌉`-sized runs, recurse on the next dimension.
fn str_sort<const D: usize>(items: &mut [(u32, Aabb<D>)], dim: usize, node_cap: usize) {
    if dim >= D || items.len() <= node_cap {
        return;
    }
    items.sort_by(|a, b| {
        let ca = a.1.center().coords[dim];
        let cb = b.1.center().coords[dim];
        ca.total_cmp(&cb)
    });
    let n_nodes = items.len().div_ceil(node_cap);
    let remaining_dims = D - dim;
    let slices = (n_nodes as f64)
        .powf(1.0 / remaining_dims as f64)
        .ceil()
        .max(1.0) as usize;
    let slab = items.len().div_ceil(slices);
    for chunk in items.chunks_mut(slab.max(1)) {
        str_sort(chunk, dim + 1, node_cap);
    }
}

/// Inputs smaller than this always bulk-load sequentially: thread spawn
/// plus merge-buffer traffic costs more than the sort itself saves.
const MIN_PARALLEL_ENTRIES: usize = 1024;

/// The top level of the STR tiling, fanned over `threads` workers: the
/// dimension-0 sort runs as a parallel stable merge sort, then each slab
/// (a disjoint sub-slice) recurses through the sequential [`str_sort`] on
/// a worker thread. Output is identical to `str_sort(items, 0, node_cap)`.
fn str_sort_parallel<const D: usize>(
    items: &mut [(u32, Aabb<D>)],
    node_cap: usize,
    threads: usize,
) {
    if threads <= 1 {
        str_sort(items, 0, node_cap);
        return;
    }
    if D == 0 || items.len() <= node_cap {
        return;
    }
    par_stable_sort(items, threads, |a, b| {
        let ca = a.1.center().coords[0];
        let cb = b.1.center().coords[0];
        ca.total_cmp(&cb)
    });
    // The exact slab arithmetic of the sequential `str_sort` at dim 0.
    let n_nodes = items.len().div_ceil(node_cap);
    let slices = (n_nodes as f64).powf(1.0 / D as f64).ceil().max(1.0) as usize;
    let slab = items.len().div_ceil(slices);
    let mut slabs: Vec<&mut [(u32, Aabb<D>)]> = items.chunks_mut(slab.max(1)).collect();
    let per = slabs.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for group in slabs.chunks_mut(per) {
            scope.spawn(move || {
                for run in group.iter_mut() {
                    str_sort(run, 1, node_cap);
                }
            });
        }
    });
}

/// Parallel stable merge sort over `Copy` items, byte-identical to
/// `slice::sort_by` with the same comparator: contiguous chunks are sorted
/// stably in parallel, then merged pairwise (ties take the left run, which
/// preserves stability). Stability pins the result to the unique
/// permutation ordered by `(key, original index)`, so no thread count can
/// produce a different ordering than the standard library's stable sort.
fn par_stable_sort<T: Copy + Send>(
    items: &mut [T],
    threads: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Copy + Send + Sync,
) {
    let n = items.len();
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for run in items.chunks_mut(chunk) {
            scope.spawn(move || run.sort_by(cmp));
        }
    });
    let mut width = chunk;
    while width < n {
        std::thread::scope(|scope| {
            for pair in items.chunks_mut(2 * width) {
                // A trailing chunk with no right half is already sorted.
                if pair.len() > width {
                    scope.spawn(move || merge_sorted_halves(pair, width, cmp));
                }
            }
        });
        width *= 2;
    }
}

/// Merges `slice[..mid]` and `slice[mid..]` (each sorted under `cmp`)
/// through a scratch buffer; equal elements take the left half first.
fn merge_sorted_halves<T: Copy>(
    slice: &mut [T],
    mid: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) {
    let mut out = Vec::with_capacity(slice.len());
    let (a, b) = slice.split_at(mid);
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]) == std::cmp::Ordering::Less {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    slice.copy_from_slice(&out);
}

/// Packs STR-ordered entries into leaves of `node_cap`, fanning the copies
/// over `threads` workers. Worker boundaries are aligned to `node_cap`
/// multiples, so the concatenated per-worker output equals the sequential
/// `items.chunks(node_cap)` exactly. Workers are joined in spawn order.
fn pack_leaves<const D: usize>(
    items: &[(u32, Aabb<D>)],
    node_cap: usize,
    threads: usize,
) -> Vec<Node<D>> {
    let n_leaves = items.len().div_ceil(node_cap);
    if threads <= 1 || n_leaves <= 1 {
        return items
            .chunks(node_cap)
            .map(|chunk| Node::Leaf {
                entries: chunk.to_vec(),
            })
            .collect();
    }
    let per = n_leaves.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(per * node_cap)
            .map(|group| {
                scope.spawn(move || {
                    group
                        .chunks(node_cap)
                        .map(|chunk| Node::Leaf {
                            entries: chunk.to_vec(),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n_leaves);
        for h in handles {
            out.extend(h.join().expect("leaf packer panicked"));
        }
        out
    })
}

fn str_sort_nodes<const D: usize>(items: &mut [(Aabb<D>, Node<D>)], dim: usize, node_cap: usize) {
    if dim >= D || items.len() <= node_cap {
        return;
    }
    items.sort_by(|a, b| {
        let ca = a.0.center().coords[dim];
        let cb = b.0.center().coords[dim];
        ca.total_cmp(&cb)
    });
    let n_nodes = items.len().div_ceil(node_cap);
    let remaining_dims = D - dim;
    let slices = (n_nodes as f64)
        .powf(1.0 / remaining_dims as f64)
        .ceil()
        .max(1.0) as usize;
    let slab = items.len().div_ceil(slices);
    for chunk in items.chunks_mut(slab.max(1)) {
        str_sort_nodes(chunk, dim + 1, node_cap);
    }
}

/// Recursive removal: descend only into children whose box contains the
/// entry's box (the containment invariant guarantees the entry cannot live
/// anywhere else), delete the first id match at a leaf, then prune emptied
/// children and tighten boxes on the unwind. Returns whether it removed.
fn remove_rec<const D: usize>(node: &mut Node<D>, id: u32, bbox: &Aabb<D>) -> bool {
    match node {
        Node::Leaf { entries } => match entries.iter().position(|(e, _)| *e == id) {
            Some(k) => {
                entries.remove(k);
                true
            }
            None => false,
        },
        Node::Internal { children } => {
            for k in 0..children.len() {
                if !children[k].0.contains(bbox) {
                    continue;
                }
                if remove_rec(&mut children[k].1, id, bbox) {
                    if children[k].1.is_node_empty() {
                        children.remove(k);
                    } else {
                        children[k].0 = children[k].1.bbox();
                    }
                    return true;
                }
            }
            false
        }
    }
}

/// Recursive insertion; returns `Some((left, right))` when the node split.
fn insert_rec<const D: usize>(
    node: &mut Node<D>,
    id: u32,
    bbox: &Aabb<D>,
    params: &RTreeParams,
) -> Option<(Node<D>, Node<D>)> {
    match node {
        Node::Leaf { entries } => {
            entries.push((id, *bbox));
            if entries.len() > params.max_entries {
                let (a, b) = quadratic_split(std::mem::take(entries), params, |e| e.1);
                Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }))
            } else {
                None
            }
        }
        Node::Internal { children } => {
            // Choose the child whose bbox needs least enlargement
            // (ties: smaller volume).
            let best = (0..children.len())
                .min_by(|&i, &j| {
                    let ei = children[i].0.enlargement(bbox);
                    let ej = children[j].0.enlargement(bbox);
                    ei.total_cmp(&ej)
                        .then_with(|| children[i].0.volume().total_cmp(&children[j].0.volume()))
                })
                .expect("internal node has children");
            let split = insert_rec(&mut children[best].1, id, bbox, params);
            children[best].0 = children[best].1.bbox();
            if let Some((l, r)) = split {
                children[best] = (l.bbox(), Box::new(l));
                children.push((r.bbox(), Box::new(r)));
                if children.len() > params.max_entries {
                    let (a, b) = quadratic_split(std::mem::take(children), params, |e| e.0);
                    return Some((
                        Node::Internal { children: a },
                        Node::Internal { children: b },
                    ));
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then assign each remaining entry to the group needing least enlargement,
/// honouring the min-entries floor.
fn quadratic_split<T, const D: usize>(
    mut entries: Vec<T>,
    params: &RTreeParams,
    bbox_of: impl Fn(&T) -> Aabb<D>,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() >= 2);
    // Pick seeds.
    let (mut si, mut sj, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let bi = bbox_of(&entries[i]);
            let bj = bbox_of(&entries[j]);
            let waste = bi.union(&bj).volume() - bi.volume() - bj.volume();
            if waste > worst {
                worst = waste;
                si = i;
                sj = j;
            }
        }
    }
    // Remove the later index first so the earlier stays valid.
    let (hi, lo) = if si > sj { (si, sj) } else { (sj, si) };
    let seed_b = entries.swap_remove(hi);
    let seed_a = entries.swap_remove(lo);
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut bbox_a = bbox_of(&group_a[0]);
    let mut bbox_b = bbox_of(&group_b[0]);

    while let Some(item) = entries.pop() {
        let remaining = entries.len();
        // Force-assign when a group must take everything left to reach m.
        if group_a.len() + remaining < params.min_entries {
            bbox_a.extend(&bbox_of(&item));
            group_a.push(item);
            continue;
        }
        if group_b.len() + remaining < params.min_entries {
            bbox_b.extend(&bbox_of(&item));
            group_b.push(item);
            continue;
        }
        let ib = bbox_of(&item);
        let ea = bbox_a.enlargement(&ib);
        let eb = bbox_b.enlargement(&ib);
        if ea < eb || (ea == eb && group_a.len() <= group_b.len()) {
            bbox_a.extend(&ib);
            group_a.push(item);
        } else {
            bbox_b.extend(&ib);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScanIndex;

    fn aabb2(minx: f64, miny: f64, maxx: f64, maxy: f64) -> Aabb<2> {
        Aabb::new([minx, miny], [maxx, maxy])
    }

    fn lattice(n: usize) -> Vec<(u32, Aabb<2>)> {
        let mut out = Vec::new();
        let side = (n as f64).sqrt().ceil() as usize;
        for i in 0..n {
            let x = (i % side) as f64 * 2.0;
            let y = (i / side) as f64 * 2.0;
            out.push((i as u32, aabb2(x, y, x + 1.2, y + 0.8)));
        }
        out
    }

    #[test]
    fn bulk_load_invariants_and_queries() {
        let entries = lattice(500);
        let tree = RTree::bulk_load(RTreeParams::default(), entries.clone());
        tree.check_invariants();
        assert_eq!(tree.len(), 500);
        assert!(tree.depth() >= 2, "500 entries cannot fit one leaf");

        let linear = LinearScanIndex::build(entries);
        for &(x, y, s) in &[(0.0, 0.0, 3.0), (10.0, 10.0, 5.0), (40.0, 0.0, 2.0)] {
            let w = aabb2(x, y, x + s, y + s);
            let mut a = tree.query(&w);
            let mut b = linear.query(&w);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {w:?}");
        }
    }

    #[test]
    fn incremental_insert_matches_linear_scan() {
        let entries = lattice(300);
        let mut tree = RTree::new(RTreeParams::default());
        let mut linear = LinearScanIndex::default();
        for (id, b) in entries {
            tree.insert(id, b);
            linear.insert(id, b);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 300);
        for &(x, y, s) in &[(0.0, 0.0, 100.0), (5.0, 5.0, 0.5), (31.0, 31.0, 4.0)] {
            let w = aabb2(x, y, x + s, y + s);
            let mut a = tree.query(&w);
            let mut b = linear.query(&w);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {w:?}");
        }
    }

    #[test]
    fn bulk_load_handles_signed_zeros_and_tied_centers() {
        // Regression for the partial_cmp → total_cmp switch in the STR
        // sorts: centers that tie exactly (stacked boxes) and centers
        // differing only in zero sign (-0.0 vs 0.0 — unequal under
        // total_cmp, equal under partial_cmp) must still produce a tree
        // whose queries match a brute-force filter.
        let mut entries = Vec::new();
        for i in 0..40u32 {
            let x = if i % 2 == 0 { -0.0 } else { 0.0 };
            entries.push((i, aabb2(x, i as f64, x + 1.0, i as f64 + 0.5)));
        }
        // A fully stacked pile: every center identical.
        for i in 40..80u32 {
            entries.push((i, aabb2(5.0, 5.0, 6.0, 6.0)));
        }
        let tree = RTree::bulk_load(RTreeParams::default(), entries.clone());
        tree.check_invariants();
        let linear = LinearScanIndex::build(entries);
        for w in [
            aabb2(-1.0, -1.0, 2.0, 50.0),
            aabb2(4.5, 4.5, 7.0, 7.0),
            aabb2(0.0, 10.0, 0.5, 20.0),
        ] {
            let mut a = tree.query(&w);
            let mut b = linear.query(&w);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {w:?}");
        }
    }

    #[test]
    fn parallel_bulk_load_is_identical_to_sequential() {
        // Above the parallel floor so every thread count exercises the
        // parallel sort/tile/pack phases for real.
        let entries = lattice(3000);
        let sequential = RTree::bulk_load(RTreeParams::default(), entries.clone());
        for threads in [1, 2, 3, 4, 8] {
            let parallel =
                RTree::bulk_load_parallel(RTreeParams::default(), entries.clone(), threads);
            parallel.check_invariants();
            assert_eq!(parallel, sequential, "t={threads}: structural mismatch");
            assert_eq!(
                format!("{parallel:?}"),
                format!("{sequential:?}"),
                "t={threads}: debug render differs (signed zeros?)"
            );
        }
    }

    #[test]
    fn parallel_bulk_load_is_identical_on_ties_and_signed_zeros() {
        // Stability stress: long runs of exactly-equal sort keys and
        // -0.0/0.0 pairs (unequal under total_cmp) above the parallel
        // floor, where a non-stable merge would reorder ids.
        let mut entries = Vec::new();
        for i in 0..2048u32 {
            let x = if i % 2 == 0 { -0.0 } else { 0.0 };
            let y = (i % 7) as f64; // heavy key ties within each column
            entries.push((i, aabb2(x, y, x + 1.0, y + 0.5)));
        }
        let sequential = RTree::bulk_load(RTreeParams::default(), entries.clone());
        for threads in [2, 4, 8] {
            let parallel =
                RTree::bulk_load_parallel(RTreeParams::default(), entries.clone(), threads);
            parallel.check_invariants();
            assert_eq!(parallel, sequential, "t={threads}");
            assert_eq!(
                format!("{parallel:?}"),
                format!("{sequential:?}"),
                "t={threads}"
            );
        }
    }

    #[test]
    fn parallel_bulk_load_small_input_takes_sequential_path() {
        let entries = lattice(100);
        let sequential = RTree::bulk_load(RTreeParams::default(), entries.clone());
        let parallel = RTree::bulk_load_parallel(RTreeParams::default(), entries, 8);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let tree: RTree<2> = RTree::default();
        assert!(tree.is_empty());
        assert!(tree.query(&aabb2(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn single_entry() {
        let tree = RTree::bulk_load(RTreeParams::default(), vec![(9, aabb2(0.0, 0.0, 1.0, 1.0))]);
        tree.check_invariants();
        assert_eq!(tree.query(&aabb2(0.5, 0.5, 0.6, 0.6)), vec![9]);
        assert!(tree.query(&aabb2(2.0, 2.0, 3.0, 3.0)).is_empty());
    }

    #[test]
    fn duplicate_boxes_are_all_reported() {
        let same = aabb2(1.0, 1.0, 2.0, 2.0);
        let entries: Vec<_> = (0..50).map(|i| (i, same)).collect();
        let tree = RTree::bulk_load(RTreeParams::default(), entries);
        tree.check_invariants();
        let mut hits = tree.query(&aabb2(1.5, 1.5, 1.6, 1.6));
        hits.sort_unstable();
        assert_eq!(hits, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn query_window_outside_universe() {
        let tree = RTree::bulk_load(RTreeParams::default(), lattice(64));
        assert!(tree.query(&aabb2(-100.0, -100.0, -99.0, -99.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn invalid_params_rejected() {
        let _ = RTree::<2>::new(RTreeParams {
            max_entries: 8,
            min_entries: 7,
        });
    }

    #[test]
    fn remove_matches_linear_scan_after_each_deletion() {
        let entries = lattice(200);
        let mut tree = RTree::bulk_load(RTreeParams::default(), entries.clone());
        let mut linear = LinearScanIndex::build(entries.clone());
        // Delete in an order that empties whole leaves (consecutive STR
        // chunks are spatial runs) interleaved with scattered ids.
        let order: Vec<u32> = (0..200u32)
            .map(|k| if k % 2 == 0 { k / 2 } else { 199 - k / 2 })
            .collect();
        for (step, &id) in order.iter().enumerate() {
            let bbox = entries[id as usize].1;
            assert!(tree.remove(id, &bbox), "id {id} present");
            assert!(!tree.remove(id, &bbox), "id {id} already gone");
            assert!(linear.remove(id));
            tree.check_invariants();
            assert_eq!(tree.len(), 199 - step);
            for &(x, y, s) in &[(0.0, 0.0, 100.0), (3.0, 3.0, 4.0), (20.0, 12.0, 6.0)] {
                let w = aabb2(x, y, x + s, y + s);
                let mut a = tree.query(&w);
                let mut b = linear.query(&w);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "step {step}, window {w:?}");
            }
        }
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 1, "emptied tree collapses to a single leaf");
        // The emptied tree keeps accepting inserts.
        tree.insert(7, aabb2(0.0, 0.0, 1.0, 1.0));
        tree.check_invariants();
        assert_eq!(tree.query(&aabb2(0.5, 0.5, 0.6, 0.6)), vec![7]);
    }

    #[test]
    fn remove_of_absent_id_is_a_noop() {
        let entries = lattice(32);
        let mut tree = RTree::bulk_load(RTreeParams::default(), entries.clone());
        assert!(!tree.remove(999, &aabb2(0.0, 0.0, 1.0, 1.0)));
        assert_eq!(tree.len(), 32);
        tree.check_invariants();
    }

    #[test]
    fn remove_interleaved_with_insert_keeps_invariants() {
        let entries = lattice(128);
        let mut tree = RTree::bulk_load(RTreeParams::default(), entries.clone());
        // Churn: remove the first half while inserting replacements.
        for i in 0..64u32 {
            assert!(tree.remove(i, &entries[i as usize].1));
            let x = 200.0 + i as f64;
            tree.insert(1000 + i, aabb2(x, 0.0, x + 0.5, 0.5));
            tree.check_invariants();
        }
        assert_eq!(tree.len(), 128);
        let hits = tree.query(&aabb2(200.0, 0.0, 300.0, 1.0));
        assert_eq!(hits.len(), 64);
    }

    #[test]
    fn mixed_bulk_and_insert() {
        let mut tree = RTree::bulk_load(RTreeParams::default(), lattice(128));
        for i in 0..64u32 {
            let x = -10.0 - i as f64;
            tree.insert(1000 + i, aabb2(x, 0.0, x + 0.5, 0.5));
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 192);
        let hits = tree.query(&aabb2(-12.0, 0.0, -11.0, 1.0));
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|&id| id >= 1000));
    }
}
