//! # traclus-index
//!
//! Spatial index substrate for TRACLUS ε-neighborhood queries.
//!
//! Lemma 3 of the paper: line-segment clustering costs `O(n²)` without an
//! index and `O(n log n)` with "an appropriate index such as the R-tree".
//! The paper defers the difficulty — the segment distance is **not a
//! metric** — to future work (Section 7.1, item 3). We resolve it here with
//! a *conservative filter-and-refine* scheme:
//!
//! 1. every segment is indexed by its minimum bounding rectangle (MBR);
//! 2. an ε-neighborhood query for segment `L` retrieves all candidates
//!    whose MBR intersects `mbr(L)` expanded by the
//!    [`filter_radius`] `r(ε)`;
//! 3. exact distances refine the candidate set.
//!
//! **Why the filter is conservative.** Let `dmin` be the closest Euclidean
//! approach of segments `Lᵢ, Lⱼ`. Pick the endpoint of the shorter segment
//! that realises the parallel distance `d∥`; its perpendicular offset
//! `l⊥ ≤ 2·d⊥` because the order-2 Lehmer mean satisfies
//! `L₂(a,b) ≥ max(a,b)/2` (tested in `traclus-geom`). The distance from
//! that endpoint to the segment `Lᵢ` is at most `√(l⊥² + d∥²)`, hence
//!
//! ```text
//! dmin ≤ √((2·d⊥)² + d∥²).
//! ```
//!
//! If `dist(Lᵢ,Lⱼ) = w⊥·d⊥ + w∥·d∥ + wθ·dθ ≤ ε`, then `d⊥ ≤ ε/w⊥` and
//! `d∥ ≤ ε/w∥` individually (all terms non-negative), so
//! `dmin ≤ ε·√(4/w⊥² + 1/w∥²)`, and since MBR distance lower-bounds segment
//! distance, expanding the query MBR by that radius cannot miss a
//! neighbour. With the paper's uniform weights the radius is `√5·ε ≈
//! 2.24·ε`. The bound is property-tested in this crate against random
//! segment pairs.
//!
//! Three interchangeable implementations of [`SpatialIndex`]:
//! [`LinearScanIndex`] (the O(n²) reference), [`GridIndex`] (uniform
//! hashing, O(1) expected per query for well-spread data), and [`RTree`]
//! (STR bulk load + quadratic-split insertion, the paper's suggestion).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod grid;
pub mod rtree;
pub mod tiles;

pub use grid::GridIndex;
pub use rtree::{RTree, RTreeParams};
pub use tiles::TileGrid;

use traclus_geom::{Aabb, DistanceWeights};

/// Radius by which a query MBR must be expanded so that an intersection
/// test over-approximates the ε-neighborhood under the composite segment
/// distance (see the crate docs for the derivation).
///
/// Returns `None` when either the perpendicular or parallel weight is zero:
/// the distance then no longer bounds spatial proximity at all and only a
/// full scan is correct.
pub fn filter_radius(eps: f64, weights: &DistanceWeights) -> Option<f64> {
    debug_assert!(eps >= 0.0);
    if weights.perpendicular <= 0.0 || weights.parallel <= 0.0 {
        return None;
    }
    let wp = weights.perpendicular;
    let wl = weights.parallel;
    Some(eps * (4.0 / (wp * wp) + 1.0 / (wl * wl)).sqrt())
}

/// A spatial index over id-tagged bounding boxes.
///
/// Implementations must return **every** stored id whose box intersects the
/// query window (false positives allowed, false negatives not) — that is
/// exactly the contract the conservative filter needs.
pub trait SpatialIndex<const D: usize> {
    /// Appends to `out` the ids of all entries whose box intersects
    /// `window`. `out` is *not* cleared; ids may appear at most once.
    fn query_into(&self, window: &Aabb<D>, out: &mut Vec<u32>);

    /// [`Self::query_into`] with the appended candidates left in ascending
    /// id order — the deterministic handoff the refinement stage needs
    /// before feeding candidates to the batched distance kernel. Only the
    /// appended suffix is sorted; any existing prefix of `out` keeps its
    /// order (same append contract as `query_into`).
    ///
    /// Downstream, the filter-and-refine prune step drops candidates with
    /// an order-preserving `retain`, so sortedness here is what keeps the
    /// final neighborhood ascending regardless of how many candidates the
    /// lower bounds discard.
    fn query_sorted_into(&self, window: &Aabb<D>, out: &mut Vec<u32>) {
        let start = out.len();
        self.query_into(window, out);
        out[start..].sort_unstable();
    }

    /// Number of indexed entries.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience wrapper allocating a fresh result vector.
    fn query(&self, window: &Aabb<D>) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(window, &mut out);
        out
    }
}

/// The O(n)-per-query reference implementation (no acceleration): scans all
/// boxes. Used as the ground truth in tests and as the "no index" arm of
/// the Lemma 3 experiment.
#[derive(Debug, Clone, Default)]
pub struct LinearScanIndex<const D: usize> {
    entries: Vec<(u32, Aabb<D>)>,
}

impl<const D: usize> LinearScanIndex<D> {
    /// Builds from `(id, box)` pairs.
    pub fn build(entries: impl IntoIterator<Item = (u32, Aabb<D>)>) -> Self {
        Self {
            entries: entries.into_iter().collect(),
        }
    }

    /// Adds one entry.
    pub fn insert(&mut self, id: u32, bbox: Aabb<D>) {
        self.entries.push((id, bbox));
    }

    /// Removes every entry with the given id, returning whether any was
    /// present. O(n) — this is the reference implementation, so removal is
    /// as plain as the queries.
    pub fn remove(&mut self, id: u32) -> bool {
        let before = self.entries.len();
        self.entries.retain(|&(e, _)| e != id);
        self.entries.len() != before
    }
}

impl<const D: usize> SpatialIndex<D> for LinearScanIndex<D> {
    fn query_into(&self, window: &Aabb<D>, out: &mut Vec<u32>) {
        for (id, bbox) in &self.entries {
            if bbox.intersects(window) {
                out.push(*id);
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traclus_geom::{Segment2, SegmentDistance};

    #[test]
    fn filter_radius_uniform_weights_is_sqrt5_eps() {
        let r = filter_radius(2.0, &DistanceWeights::uniform()).unwrap();
        assert!((r - 2.0 * 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn filter_radius_zero_weight_disables_filtering() {
        assert!(filter_radius(1.0, &DistanceWeights::new(0.0, 1.0, 1.0)).is_none());
        assert!(filter_radius(1.0, &DistanceWeights::new(1.0, 0.0, 1.0)).is_none());
        // Zero angle weight is fine: the bound never used dθ.
        assert!(filter_radius(1.0, &DistanceWeights::new(1.0, 1.0, 0.0)).is_some());
    }

    #[test]
    fn filter_bound_holds_on_adversarial_pairs() {
        // Hand-picked near-worst-case geometries for the bound.
        let dist = SegmentDistance::default();
        let weights = DistanceWeights::uniform();
        let pairs = [
            // Collinear, disjoint: all gap in d∥.
            (
                Segment2::xy(0.0, 0.0, 10.0, 0.0),
                Segment2::xy(14.0, 0.0, 17.0, 0.0),
            ),
            // One perpendicular offset zero (Lehmer mean at its max/2 bound).
            (
                Segment2::xy(0.0, 0.0, 10.0, 0.0),
                Segment2::xy(3.0, 0.0, 6.0, 4.0),
            ),
            // Anti-parallel overlap.
            (
                Segment2::xy(0.0, 0.0, 10.0, 0.0),
                Segment2::xy(9.0, 1.0, 1.0, 1.0),
            ),
            // Tiny far segment.
            (
                Segment2::xy(0.0, 0.0, 100.0, 0.0),
                Segment2::xy(50.0, 7.0, 50.1, 7.0),
            ),
        ];
        for (a, b) in pairs {
            let d = dist.distance(&a, &b);
            let dmin = a.min_distance(&b);
            let r = filter_radius(d, &weights).unwrap();
            assert!(
                dmin <= r + 1e-9,
                "bound violated: dmin={dmin} > r={r} for dist={d}"
            );
        }
    }

    #[test]
    fn query_sorted_into_orders_candidates() {
        // Insertion order deliberately scrambled relative to id order.
        let entries = vec![
            (9, Aabb::new([0.0, 0.0], [1.0, 1.0])),
            (2, Aabb::new([0.2, 0.2], [0.8, 0.8])),
            (7, Aabb::new([0.4, 0.4], [0.6, 0.6])),
        ];
        let idx = LinearScanIndex::build(entries);
        let mut out = Vec::new();
        idx.query_sorted_into(&Aabb::new([0.45, 0.45], [0.55, 0.55]), &mut out);
        assert_eq!(out, vec![2, 7, 9]);
        // Append contract: an existing prefix keeps its order; only the
        // newly appended suffix is sorted.
        let mut out = vec![99, 1];
        idx.query_sorted_into(&Aabb::new([0.45, 0.45], [0.55, 0.55]), &mut out);
        assert_eq!(out, vec![99, 1, 2, 7, 9]);
    }

    #[test]
    fn sorted_candidates_stay_sorted_under_retain_based_pruning() {
        // The core crate's filter step discards candidates with
        // `Vec::retain`, which preserves relative order — so a sorted
        // query result stays sorted no matter which subset survives. Pin
        // the combination here, next to the sortedness contract it
        // depends on.
        let entries: Vec<_> = (0..32u32)
            .rev()
            .map(|id| {
                let lo = id as f64 * 0.01;
                (id, Aabb::new([lo, lo], [lo + 2.0, lo + 2.0]))
            })
            .collect();
        let idx = LinearScanIndex::build(entries);
        let mut out = Vec::new();
        idx.query_sorted_into(&Aabb::new([0.5, 0.5], [1.5, 1.5]), &mut out);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted handoff");
        // Arbitrary prune predicate standing in for a lower-bound test.
        out.retain(|&id| id % 3 != 1);
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "pruned subset stays ascending"
        );
    }

    #[test]
    fn linear_scan_finds_exactly_intersecting_boxes() {
        let entries = vec![
            (0, Aabb::new([0.0, 0.0], [1.0, 1.0])),
            (1, Aabb::new([2.0, 2.0], [3.0, 3.0])),
            (2, Aabb::new([0.5, 0.5], [2.5, 2.5])),
        ];
        let idx = LinearScanIndex::build(entries);
        assert_eq!(idx.len(), 3);
        let mut out = idx.query(&Aabb::new([0.9, 0.9], [1.1, 1.1]));
        out.sort_unstable();
        assert_eq!(out, vec![0, 2]);
    }
}
