//! Spatial tiling for sharded parallel clustering.
//!
//! The parallel grouping phase partitions the segment database into worker
//! shards by *MBR tile*: a [`TileGrid`] covers the database bounding box
//! with an axis-aligned lattice of roughly `target_tiles` tiles, each
//! segment is assigned to the tile containing its MBR midpoint, and tiles
//! are packed into shards. The grid also answers a conservative *border
//! query*: whether a box (a segment MBR expanded by the ε filter radius)
//! stays inside one tile or crosses tile boundaries. The merge pass itself
//! classifies edges exactly, from the neighborhoods it already computed;
//! the geometric query is the a-priori over-approximation — useful for
//! planning diagnostics and for tests that must prove a fixture really
//! spans tiles.
//!
//! The lattice is built by repeatedly splitting the axis with the longest
//! current tile edge, so tiles stay close to square regardless of the data
//! aspect ratio. Degenerate inputs (empty box, all mass on one point)
//! collapse to a single tile rather than producing NaN arithmetic.

use traclus_geom::{Aabb, Point};

/// An axis-aligned lattice of tiles covering a bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct TileGrid<const D: usize> {
    bbox: Aabb<D>,
    /// Number of tiles along each axis (all ≥ 1).
    splits: [usize; D],
    /// Tile edge length per axis; 0 on zero-extent axes.
    tile_size: [f64; D],
}

impl<const D: usize> TileGrid<D> {
    /// Covers `bbox` with at least `target_tiles` tiles (unless the box is
    /// degenerate, in which case a single tile results). Axes are split
    /// greedily by longest current tile edge.
    pub fn cover(bbox: &Aabb<D>, target_tiles: usize) -> Self {
        let target = target_tiles.max(1);
        let mut splits = [1usize; D];
        let mut extent = [0.0f64; D];
        if !bbox.is_empty() {
            for (k, ext) in extent.iter_mut().enumerate() {
                let e = bbox.max[k] - bbox.min[k];
                *ext = if e.is_finite() && e > 0.0 { e } else { 0.0 };
            }
            while splits.iter().product::<usize>() < target {
                // Split the axis whose tiles are currently longest.
                let axis = (0..D).max_by(|&a, &b| {
                    let ea = extent[a] / splits[a] as f64;
                    let eb = extent[b] / splits[b] as f64;
                    ea.total_cmp(&eb)
                });
                match axis {
                    Some(a) if extent[a] > 0.0 => splits[a] += 1,
                    // All axes zero-extent: one tile is all there is.
                    _ => break,
                }
            }
        }
        let mut tile_size = [0.0f64; D];
        for k in 0..D {
            tile_size[k] = extent[k] / splits[k] as f64;
        }
        Self {
            bbox: *bbox,
            splits,
            tile_size,
        }
    }

    /// Total number of tiles in the lattice.
    pub fn tile_count(&self) -> usize {
        self.splits.iter().product()
    }

    /// Tiles along each axis.
    pub fn splits(&self) -> [usize; D] {
        self.splits
    }

    /// The per-axis tile coordinate of a position, clamped to the lattice
    /// (points outside the covered box land in the nearest edge tile).
    fn coords_of(&self, p: &Point<D>) -> [usize; D] {
        let mut c = [0usize; D];
        if self.bbox.is_empty() {
            return c;
        }
        for k in 0..D {
            if self.tile_size[k] > 0.0 {
                let raw = ((p[k] - self.bbox.min[k]) / self.tile_size[k]).floor();
                let clamped = raw.max(0.0).min((self.splits[k] - 1) as f64);
                c[k] = clamped as usize;
            }
        }
        c
    }

    /// Flat (row-major) tile index of a position.
    pub fn tile_of(&self, p: &Point<D>) -> usize {
        self.flatten(self.coords_of(p))
    }

    fn flatten(&self, coords: [usize; D]) -> usize {
        self.splits
            .iter()
            .zip(coords)
            .fold(0usize, |idx, (&split, c)| idx * split + c)
    }

    /// Flat (row-major) index of explicit per-axis tile coordinates. Each
    /// coordinate must be `< splits()[k]`.
    pub fn flat_index(&self, coords: [usize; D]) -> usize {
        debug_assert!((0..D).all(|k| coords[k] < self.splits[k]));
        self.flatten(coords)
    }

    /// Per-axis tile coordinates of a flat (row-major) tile index — the
    /// inverse of [`Self::flat_index`].
    pub fn tile_coords(&self, tile: usize) -> [usize; D] {
        debug_assert!(tile < self.tile_count());
        let mut c = [0usize; D];
        let mut rest = tile;
        for k in (0..D).rev() {
            c[k] = rest % self.splits[k];
            rest /= self.splits[k];
        }
        c
    }

    /// The geometric box of a tile (by flat index). The last tile along
    /// each axis extends to the covered box's max, so tile boxes tile the
    /// covered box exactly; zero-extent (unsplit) axes span the full box.
    pub fn tile_bbox(&self, tile: usize) -> Aabb<D> {
        let coords = self.tile_coords(tile);
        let mut min = [0.0f64; D];
        let mut max = [0.0f64; D];
        for k in 0..D {
            min[k] = self.bbox.min[k] + coords[k] as f64 * self.tile_size[k];
            max[k] = if coords[k] + 1 == self.splits[k] {
                self.bbox.max[k]
            } else {
                self.bbox.min[k] + (coords[k] + 1) as f64 * self.tile_size[k]
            };
        }
        Aabb::new(min, max)
    }

    /// The inclusive per-axis tile-coordinate range overlapped by a box
    /// (clamped to the lattice). `None` for an empty box.
    pub fn tile_range(&self, window: &Aabb<D>) -> Option<([usize; D], [usize; D])> {
        if window.is_empty() || self.bbox.is_empty() {
            return None;
        }
        let lo = self.coords_of(&Point::new(window.min));
        let hi = self.coords_of(&Point::new(window.max));
        Some((lo, hi))
    }

    /// Border query: does `window` overlap more than one tile? For a
    /// segment MBR expanded by the ε filter radius this over-approximates
    /// "can this segment's ε-ball reach outside its own tile" — a segment
    /// for which this is false can never contribute a cross-tile edge.
    pub fn crosses_boundary(&self, window: &Aabb<D>) -> bool {
        match self.tile_range(window) {
            Some((lo, hi)) => (0..D).any(|k| lo[k] < hi[k]),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aabb2(minx: f64, miny: f64, maxx: f64, maxy: f64) -> Aabb<2> {
        Aabb::new([minx, miny], [maxx, maxy])
    }

    #[test]
    fn covers_with_at_least_target_tiles() {
        let grid = TileGrid::cover(&aabb2(0.0, 0.0, 100.0, 50.0), 8);
        assert!(grid.tile_count() >= 8);
        // The longest-edge heuristic splits x more than y on a 2:1 box.
        let [sx, sy] = grid.splits();
        assert!(sx >= sy);
    }

    #[test]
    fn every_point_maps_to_a_valid_tile() {
        let grid = TileGrid::cover(&aabb2(-10.0, 0.0, 10.0, 40.0), 6);
        for &(x, y) in &[
            (-10.0, 0.0),
            (10.0, 40.0),
            (0.0, 20.0),
            (-500.0, 7.0), // outside: clamps to an edge tile
            (3.0, 1e9),
        ] {
            let t = grid.tile_of(&Point::new([x, y]));
            assert!(t < grid.tile_count(), "tile {t} out of range for ({x},{y})");
        }
    }

    #[test]
    fn degenerate_boxes_collapse_to_one_tile() {
        let empty = TileGrid::<2>::cover(&Aabb::empty(), 16);
        assert_eq!(empty.tile_count(), 1);
        assert_eq!(empty.tile_of(&Point::new([3.0, 4.0])), 0);
        let point = TileGrid::cover(&aabb2(5.0, 5.0, 5.0, 5.0), 16);
        assert_eq!(point.tile_count(), 1);
        assert!(!point.crosses_boundary(&aabb2(4.0, 4.0, 6.0, 6.0)));
    }

    #[test]
    fn zero_extent_axis_is_never_split() {
        // A horizontal line of data: only x can be split.
        let grid = TileGrid::cover(&aabb2(0.0, 3.0, 100.0, 3.0), 5);
        let [sx, sy] = grid.splits();
        assert_eq!(sy, 1);
        assert!(sx >= 5);
    }

    #[test]
    fn border_query_detects_boundary_crossings() {
        let grid = TileGrid::cover(&aabb2(0.0, 0.0, 100.0, 100.0), 4);
        let [sx, _] = grid.splits();
        let first_boundary = 100.0 / sx as f64;
        let interior = aabb2(0.1, 0.1, first_boundary - 0.1, 0.1);
        assert!(!grid.crosses_boundary(&interior));
        let crossing = aabb2(first_boundary - 0.1, 0.1, first_boundary + 0.1, 0.1);
        assert!(grid.crosses_boundary(&crossing));
        assert!(!grid.crosses_boundary(&Aabb::empty()));
    }

    #[test]
    fn tile_bbox_partitions_the_covered_box() {
        let outer = aabb2(0.0, 0.0, 100.0, 50.0);
        let grid = TileGrid::cover(&outer, 8);
        let mut union = Aabb::empty();
        for t in 0..grid.tile_count() {
            assert_eq!(grid.flat_index(grid.tile_coords(t)), t, "roundtrip {t}");
            let b = grid.tile_bbox(t);
            assert!(outer.contains(&b), "tile {t} escapes the covered box");
            // A point strictly inside the tile box maps back to the tile.
            let mid = Point::new([(b.min[0] + b.max[0]) / 2.0, (b.min[1] + b.max[1]) / 2.0]);
            assert_eq!(grid.tile_of(&mid), t);
            union.extend(&b);
        }
        assert_eq!(union, outer, "tiles cover exactly");
        // Degenerate lattice: the single tile spans the whole (point) box.
        let point = TileGrid::cover(&aabb2(5.0, 5.0, 5.0, 5.0), 16);
        assert_eq!(point.tile_bbox(0), aabb2(5.0, 5.0, 5.0, 5.0));
    }

    #[test]
    fn tile_indices_are_row_major_and_stable() {
        let grid = TileGrid::cover(&aabb2(0.0, 0.0, 10.0, 10.0), 4);
        // Same point, same tile; different corners, different tiles.
        let a = grid.tile_of(&Point::new([1.0, 1.0]));
        assert_eq!(a, grid.tile_of(&Point::new([1.0, 1.0])));
        let b = grid.tile_of(&Point::new([9.0, 9.0]));
        assert_ne!(a, b);
    }
}
