//! Property-based tests: every index implementation must agree with the
//! linear-scan ground truth on arbitrary box sets and windows, under both
//! bulk loading and incremental insertion.

use proptest::prelude::*;
use traclus_geom::Aabb;
use traclus_index::{GridIndex, LinearScanIndex, RTree, RTreeParams, SpatialIndex};

prop_compose! {
    fn bbox()(x in -100.0..100.0f64, y in -100.0..100.0f64,
              w in 0.0..20.0f64, h in 0.0..20.0f64) -> Aabb<2> {
        Aabb::new([x, y], [x + w, y + h])
    }
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn rtree_bulk_load_matches_linear(
        boxes in prop::collection::vec(bbox(), 0..80),
        window in bbox(),
    ) {
        let entries: Vec<(u32, Aabb<2>)> =
            boxes.into_iter().enumerate().map(|(i, b)| (i as u32, b)).collect();
        let tree = RTree::bulk_load(RTreeParams::default(), entries.clone());
        tree.check_invariants();
        let linear = LinearScanIndex::build(entries);
        prop_assert_eq!(sorted(tree.query(&window)), sorted(linear.query(&window)));
    }

    #[test]
    fn rtree_incremental_matches_linear(
        boxes in prop::collection::vec(bbox(), 1..60),
        window in bbox(),
    ) {
        let mut tree = RTree::new(RTreeParams::default());
        let mut linear = LinearScanIndex::default();
        for (i, b) in boxes.into_iter().enumerate() {
            tree.insert(i as u32, b);
            linear.insert(i as u32, b);
        }
        tree.check_invariants();
        prop_assert_eq!(sorted(tree.query(&window)), sorted(linear.query(&window)));
    }

    #[test]
    fn grid_matches_linear(
        boxes in prop::collection::vec(bbox(), 0..80),
        window in bbox(),
        cell in 0.5..40.0f64,
    ) {
        let entries: Vec<(u32, Aabb<2>)> =
            boxes.into_iter().enumerate().map(|(i, b)| (i as u32, b)).collect();
        let grid = GridIndex::build(cell, entries.clone());
        let linear = LinearScanIndex::build(entries);
        prop_assert_eq!(sorted(grid.query(&window)), sorted(linear.query(&window)));
    }

    #[test]
    fn parallel_bulk_load_matches_sequential_structurally(
        boxes in prop::collection::vec(bbox(), 20..120),
        window in bbox(),
    ) {
        // Tile each random box into a 4×4 grid of shifted copies so the
        // entry count (320..1920) straddles the parallel floor: below it
        // the sequential fallback is exercised, above it the parallel
        // sort/tile/pack phases run for real.
        let mut entries: Vec<(u32, Aabb<2>)> = Vec::new();
        for (i, b) in boxes.into_iter().enumerate() {
            for tile in 0..16u32 {
                let dx = (tile % 4) as f64 * 250.0;
                let dy = (tile / 4) as f64 * 250.0;
                let id = (i as u32) * 16 + tile;
                entries.push((id, Aabb::new(
                    [b.min[0] + dx, b.min[1] + dy],
                    [b.max[0] + dx, b.max[1] + dy],
                )));
            }
        }
        let sequential = RTree::bulk_load(RTreeParams::default(), entries.clone());
        for threads in [1usize, 2, 4, 8] {
            let parallel =
                RTree::bulk_load_parallel(RTreeParams::default(), entries.clone(), threads);
            parallel.check_invariants();
            prop_assert_eq!(&parallel, &sequential, "t={} structure", threads);
            prop_assert_eq!(
                format!("{:?}", &parallel),
                format!("{:?}", &sequential),
                "t={} debug render", threads
            );
            prop_assert_eq!(
                parallel.query(&window),
                sequential.query(&window),
                "t={} query order", threads
            );
        }
    }

    #[test]
    fn query_results_are_unique(
        boxes in prop::collection::vec(bbox(), 0..60),
        window in bbox(),
    ) {
        let entries: Vec<(u32, Aabb<2>)> =
            boxes.into_iter().enumerate().map(|(i, b)| (i as u32, b)).collect();
        let grid = GridIndex::build(5.0, entries.clone());
        let tree = RTree::bulk_load(RTreeParams::default(), entries);
        for result in [grid.query(&window), tree.query(&window)] {
            let mut deduped = result.clone();
            deduped.sort_unstable();
            deduped.dedup();
            prop_assert_eq!(result.len(), deduped.len(), "duplicate ids reported");
        }
    }
}
